//! Depth- and size-preserving circuit reductions (Theorems 5.9, 5.11, 6.8).
//!
//! These are the gadgets that transfer the Karchmer–Wigderson Ω(log² n)
//! depth lower bound (Theorem 3.4) from transitive closure to every
//! unbounded chain program: an instance of TC is *expanded* (each edge
//! becomes a pumped-word path), a circuit for the harder program on the
//! expanded instance is taken, and its inputs are rewired — one designated
//! expansion edge carries the original edge variable, every other expansion
//! input is wired to the constant 1. The result is a circuit for TC of the
//! same size and depth, so a shallow circuit for the program would yield a
//! shallow circuit for TC, contradiction.

use grammar::{CfgPumping, RegularPumping, Terminal};
use graphgen::{EdgeId, LabeledDigraph, NodeId};
use provcirc_error::Error;
use semiring::VarId;

use crate::arena::{Circuit, InputSubst};

/// Where each edge of an expanded instance came from.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ExpandedEdgeOrigin {
    /// Carries the provenance variable of this original edge.
    Original(EdgeId),
    /// Scaffolding: wired to 1 in the circuit reduction.
    Scaffold,
}

/// An expanded instance plus the query endpoints and the edge-origin map.
#[derive(Clone, Debug)]
pub struct ExpandedInstance {
    /// The expanded graph.
    pub graph: LabeledDigraph,
    /// Query source in the expanded graph.
    pub src: NodeId,
    /// Query target in the expanded graph.
    pub dst: NodeId,
    /// Per-edge origin (aligned with `graph.edges()`).
    pub origins: Vec<ExpandedEdgeOrigin>,
}

impl ExpandedInstance {
    /// The input substitution implementing the paper's rewiring: expanded
    /// edge variable ↦ original edge variable or the constant 1.
    pub fn substitution(&self) -> impl Fn(VarId) -> InputSubst + '_ {
        move |v: VarId| match self.origins.get(v as usize) {
            Some(ExpandedEdgeOrigin::Original(e)) => InputSubst::Var(*e as VarId),
            Some(ExpandedEdgeOrigin::Scaffold) => InputSubst::One,
            None => InputSubst::One,
        }
    }

    /// Apply the rewiring to a circuit built for the expanded instance
    /// (inputs = expanded edge ids), producing a TC circuit over the
    /// original edge variables — same depth, ≤ same size.
    pub fn rewire(&self, circuit: &Circuit) -> Circuit {
        circuit.substitute_inputs(&self.substitution())
    }
}

/// Theorem 5.9 (first direction): expand a TC instance into an RPQ instance
/// for an infinite regular language, using a pumping decomposition
/// `x y* z`. Every original edge becomes a path spelling `y` (its first
/// edge carries the original variable); a path spelling `x` leads into
/// `src`, and a path spelling `z` leaves `dst`.
pub fn tc_to_rpq(
    g: &LabeledDigraph,
    src: NodeId,
    dst: NodeId,
    pumping: &RegularPumping,
    label_name: &dyn Fn(Terminal) -> String,
) -> ExpandedInstance {
    let mut out = LabeledDigraph::new(g.num_nodes());
    let mut origins = Vec::new();

    // Original vertices keep their ids; helper to append a labeled path.
    let add_word_path = |out: &mut LabeledDigraph,
                         origins: &mut Vec<ExpandedEdgeOrigin>,
                         from: NodeId,
                         to: NodeId,
                         word: &[Terminal],
                         carried: Option<EdgeId>| {
        debug_assert!(!word.is_empty());
        let mut cur = from;
        for (i, &t) in word.iter().enumerate() {
            let next = if i + 1 == word.len() {
                to
            } else {
                out.add_nodes(1)
            };
            out.add_edge(cur, next, &label_name(t));
            origins.push(match (i, carried) {
                (0, Some(e)) => ExpandedEdgeOrigin::Original(e),
                _ => ExpandedEdgeOrigin::Scaffold,
            });
            cur = next;
        }
    };

    // Each original edge (u, v) becomes a y-path carrying the edge var.
    for (e, &(u, v, _)) in g.edges().iter().enumerate() {
        add_word_path(&mut out, &mut origins, u, v, &pumping.y, Some(e));
    }
    // x-prefix into src, z-suffix out of dst (pure scaffolding).
    let s0 = if pumping.x.is_empty() {
        src
    } else {
        let s0 = out.add_nodes(1);
        add_word_path(&mut out, &mut origins, s0, src, &pumping.x, None);
        s0
    };
    let t_end = if pumping.z.is_empty() {
        dst
    } else {
        let t_end = out.add_nodes(1);
        add_word_path(&mut out, &mut origins, dst, t_end, &pumping.z, None);
        t_end
    };
    ExpandedInstance {
        graph: out,
        src: s0,
        dst: t_end,
        origins,
    }
}

/// Theorem 5.11: expand a **layered** TC instance (all `src → dst` paths
/// have the same length `path_len`) into an instance of an unbounded chain
/// program with CFG pumping `u v^i w x^i y`. Each edge becomes a `v`-path;
/// a `u`-path leads into `src`; a path spelling `w x^{path_len} y` leaves
/// `dst`, matching the number of pumped `v`'s.
pub fn tc_to_cfg(
    g: &LabeledDigraph,
    src: NodeId,
    dst: NodeId,
    path_len: usize,
    pumping: &CfgPumping,
    label_name: &dyn Fn(Terminal) -> String,
) -> Result<ExpandedInstance, Error> {
    if pumping.v.is_empty() {
        // WLOG of the paper's proof: if v is empty, swap roles by pumping on
        // x (expand edges with x and suffix with w only).
        return tc_to_cfg_on_x(g, src, dst, path_len, pumping, label_name);
    }
    let mut out = LabeledDigraph::new(g.num_nodes());
    let mut origins = Vec::new();
    let add_word_path = |out: &mut LabeledDigraph,
                         origins: &mut Vec<ExpandedEdgeOrigin>,
                         from: NodeId,
                         to: NodeId,
                         word: &[Terminal],
                         carried: Option<EdgeId>| {
        debug_assert!(!word.is_empty());
        let mut cur = from;
        for (i, &t) in word.iter().enumerate() {
            let next = if i + 1 == word.len() {
                to
            } else {
                out.add_nodes(1)
            };
            out.add_edge(cur, next, &label_name(t));
            origins.push(match (i, carried) {
                (0, Some(e)) => ExpandedEdgeOrigin::Original(e),
                _ => ExpandedEdgeOrigin::Scaffold,
            });
            cur = next;
        }
    };

    for (e, &(u, v, _)) in g.edges().iter().enumerate() {
        add_word_path(&mut out, &mut origins, u, v, &pumping.v, Some(e));
    }
    // Prefix u into src.
    let s0 = if pumping.u.is_empty() {
        src
    } else {
        let s0 = out.add_nodes(1);
        add_word_path(&mut out, &mut origins, s0, src, &pumping.u, None);
        s0
    };
    // Suffix w x^{path_len} y from dst.
    let mut suffix: Vec<Terminal> = pumping.w.clone();
    for _ in 0..path_len {
        suffix.extend_from_slice(&pumping.x);
    }
    suffix.extend_from_slice(&pumping.y);
    let t_end = if suffix.is_empty() {
        dst
    } else {
        let t_end = out.add_nodes(1);
        add_word_path(&mut out, &mut origins, dst, t_end, &suffix, None);
        t_end
    };
    Ok(ExpandedInstance {
        graph: out,
        src: s0,
        dst: t_end,
        origins,
    })
}

/// Variant of [`tc_to_cfg`] pumping on the `x` side (`v = ε`): edges spell
/// `x`, the prefix spells `u v^{path_len} w`, the suffix spells `y`.
fn tc_to_cfg_on_x(
    g: &LabeledDigraph,
    src: NodeId,
    dst: NodeId,
    path_len: usize,
    pumping: &CfgPumping,
    label_name: &dyn Fn(Terminal) -> String,
) -> Result<ExpandedInstance, Error> {
    if pumping.x.is_empty() {
        return Err(Error::unsupported(
            "pumping decomposition has empty v and x",
        ));
    }
    let mut out = LabeledDigraph::new(g.num_nodes());
    let mut origins = Vec::new();
    let add_word_path = |out: &mut LabeledDigraph,
                         origins: &mut Vec<ExpandedEdgeOrigin>,
                         from: NodeId,
                         to: NodeId,
                         word: &[Terminal],
                         carried: Option<EdgeId>| {
        debug_assert!(!word.is_empty());
        let mut cur = from;
        for (i, &t) in word.iter().enumerate() {
            let next = if i + 1 == word.len() {
                to
            } else {
                out.add_nodes(1)
            };
            out.add_edge(cur, next, &label_name(t));
            origins.push(match (i, carried) {
                (0, Some(e)) => ExpandedEdgeOrigin::Original(e),
                _ => ExpandedEdgeOrigin::Scaffold,
            });
            cur = next;
        }
    };
    for (e, &(u, v, _)) in g.edges().iter().enumerate() {
        add_word_path(&mut out, &mut origins, u, v, &pumping.x, Some(e));
    }
    let mut prefix: Vec<Terminal> = pumping.u.clone();
    for _ in 0..path_len {
        prefix.extend_from_slice(&pumping.v);
    }
    prefix.extend_from_slice(&pumping.w);
    let s0 = if prefix.is_empty() {
        src
    } else {
        let s0 = out.add_nodes(1);
        add_word_path(&mut out, &mut origins, s0, src, &prefix, None);
        s0
    };
    let t_end = if pumping.y.is_empty() {
        dst
    } else {
        let t_end = out.add_nodes(1);
        add_word_path(&mut out, &mut origins, dst, t_end, &pumping.y, None);
        t_end
    };
    Ok(ExpandedInstance {
        graph: out,
        src: s0,
        dst: t_end,
        origins,
    })
}

/// Theorem 6.8, instantiated: the lower-bound reduction for monadic
/// linear connected Datalog, for the paper's Example 2.1 reachability
/// program `U(x) :- A(x); U(x) :- U(y), E(x,y)`.
///
/// The general proof encodes each layered-graph edge as the canonical
/// database of the expansion word's `y`-part; for this program the
/// canonical database of one recursive-rule application *is* a single
/// `E`-edge, and the `zu`-part is the single fact `A(t)`. The reduction is
/// therefore: keep the layered graph's edges as `E`, set `A = {dst}`, and
/// query `U(src)`. Rewiring maps every `E`-fact variable to itself and the
/// `A`-fact to the constant 1, recovering the TC provenance of `(src, dst)`
/// at unchanged circuit depth — so an `o(log² n)`-depth circuit for `U`
/// would contradict Theorem 3.4.
pub fn tc_to_monadic_reachability(
    g: &LabeledDigraph,
    src: NodeId,
    dst: NodeId,
) -> Result<MonadicReductionInstance, Error> {
    let mut program = datalog::programs::monadic_reachability();
    let (mut db, edge_facts) = datalog::Database::from_graph(&mut program, g);
    let a = program
        .preds
        .get("A")
        .ok_or_else(|| Error::UnknownPredicate("A".into()))?;
    let dst_const = db
        .node_const(dst as usize)
        .ok_or_else(|| Error::BadQuery("dst outside the active domain".into()))?;
    let a_fact = db.insert(a, vec![dst_const]);
    Ok(MonadicReductionInstance {
        program,
        db,
        query_node: src,
        a_fact,
        num_edge_facts: edge_facts.len() as u32,
    })
}

/// The Theorem 6.8 instance: a monadic-reachability database whose `U`
/// provenance encodes TC provenance.
#[derive(Clone, Debug)]
pub struct MonadicReductionInstance {
    /// The monadic linear connected program (Example 2.1).
    pub program: datalog::Program,
    /// The constructed database (graph edges + the seeded `A` fact).
    pub db: datalog::Database,
    /// Query `U(v_{query_node})`.
    pub query_node: NodeId,
    /// The fact id of the seeded `A` fact (wired to 1 by the rewiring).
    pub a_fact: datalog::FactId,
    /// Edge facts occupy variables `0..num_edge_facts`.
    pub num_edge_facts: u32,
}

impl MonadicReductionInstance {
    /// The grounded fact index of the query `U(v_src)`, if derivable.
    pub fn query_fact(&self, gp: &datalog::GroundedProgram) -> Option<usize> {
        let u = self.program.preds.get("U")?;
        let c = self.db.node_const(self.query_node as usize)?;
        gp.fact(u, &[c])
    }

    /// The paper's rewiring: edge variables stay, the `A` seed becomes 1.
    pub fn rewire(&self, circuit: &Circuit) -> Circuit {
        let a = self.a_fact;
        circuit.substitute_inputs(&move |v| {
            if v == a {
                InputSubst::One
            } else {
                InputSubst::Var(v)
            }
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::constructions::rpq::{rpq_circuit, TcStrategy};
    use crate::metrics::stats;
    use datalog::{programs, Database};
    use grammar::{CfgAnalysis, Cnf, Dfa, Regex};
    use graphgen::generators;
    use semiring::Semiring as _;

    /// Oracle: TC provenance polynomial of (s, t) on g.
    fn tc_poly(g: &LabeledDigraph, s: usize, t: usize) -> semiring::Sorp {
        let mut p = programs::transitive_closure();
        let (db, _) = Database::from_graph(&mut p, g);
        let gp = datalog::ground(&p, &db).unwrap();
        let tp = p.preds.get("T").unwrap();
        match gp.fact(tp, &[db.node_const(s).unwrap(), db.node_const(t).unwrap()]) {
            Some(f) => {
                datalog::provenance_eval(&gp, datalog::default_budget(&gp)).values[f].clone()
            }
            None => semiring::Sorp::zero(),
        }
    }

    #[test]
    fn tc_to_rpq_rewiring_recovers_tc_provenance() {
        // Infinite RPQ: a b* c (pumped on b).
        let re = Regex::parse("a b* c").unwrap();
        for seed in 0..3u64 {
            let (g, s, t) = generators::layered(2, 3, 0.8, "E", seed);
            // Compile the DFA against the *expanded* alphabet: build with a
            // fresh alphabet and map terminals to names.
            let mut alphabet = grammar::Alphabet::new();
            let dfa = Dfa::compile(&re, &mut alphabet);
            let pumping = RegularPumping::from_dfa(&dfa).unwrap();
            let names = alphabet.clone();
            let inst = tc_to_rpq(&g, s, t, &pumping, &|t| names.name(t).to_owned());

            // Solve the RPQ on the expanded instance with both strategies.
            let mut eg = inst.graph.clone();
            let dfa2 = Dfa::compile(&re, &mut eg.alphabet);
            let expect = tc_poly(&g, s as usize, t as usize);
            for strat in [TcStrategy::BellmanFord, TcStrategy::RepeatedSquaring] {
                let big = rpq_circuit(&eg, &dfa2, inst.src, inst.dst, strat);
                let rewired = inst.rewire(&big);
                assert_eq!(rewired.polynomial(), expect, "seed {seed} {strat:?}");
                // Rewiring preserves depth and never grows size.
                assert!(stats(&rewired).depth <= stats(&big).depth);
                assert!(stats(&rewired).num_gates <= stats(&big).num_gates);
            }
        }
    }

    #[test]
    fn tc_to_cfg_rewiring_recovers_tc_provenance_via_dyck() {
        // Dyck-1 pumping: u v^i w x^i y with v = L…, x = R….
        let cnf = Cnf::from_cfg(&grammar::Cfg::dyck1());
        let analysis = CfgAnalysis::new(&cnf);
        let pumping = CfgPumping::from_cnf(&cnf, &analysis).unwrap();
        let names = cnf.alphabet.clone();

        for seed in 0..3u64 {
            let (g, s, t) = generators::layered(2, 2, 0.9, "E", seed);
            // Layered (ℓ=2 layers wide, 2 layers): all s-t paths have
            // length 3 (s → layer0 → layer1 → t).
            let inst = tc_to_cfg(&g, s, t, 3, &pumping, &|t| names.name(t).to_owned()).unwrap();

            // Solve Dyck reachability on the expanded instance by grounding.
            let mut p = programs::dyck1();
            let (db, edge_facts) = Database::from_graph(&mut p, &inst.graph);
            let gp = datalog::ground(&p, &db).unwrap();
            let spred = p.preds.get("S").unwrap();
            let expect = tc_poly(&g, s as usize, t as usize);
            let fact = gp.fact(
                spred,
                &[
                    db.node_const(inst.src as usize).unwrap(),
                    db.node_const(inst.dst as usize).unwrap(),
                ],
            );
            match fact {
                Some(f) => {
                    let big =
                        crate::constructions::grounded::grounded_circuit(&gp, None).circuit_for(f);
                    // Edge fact ids equal edge indices (from_graph aligns).
                    assert_eq!(edge_facts, (0..edge_facts.len() as u32).collect::<Vec<_>>());
                    let rewired = inst.rewire(&big);
                    assert_eq!(rewired.polynomial(), expect, "seed {seed}");
                }
                None => assert!(expect.is_empty(), "seed {seed}"),
            }
        }
    }

    #[test]
    fn monadic_reduction_recovers_tc_provenance() {
        for seed in 0..3u64 {
            let (g, s, t) = generators::layered(2, 3, 0.8, "E", seed);
            let inst = super::tc_to_monadic_reachability(&g, s, t).unwrap();
            let gp = datalog::ground(&inst.program, &inst.db).unwrap();
            let expect = tc_poly(&g, s as usize, t as usize);
            match inst.query_fact(&gp) {
                Some(f) => {
                    let big = crate::constructions::uvg::uvg_circuit(&gp, None).circuit_for(f);
                    let rewired = inst.rewire(&big);
                    assert_eq!(rewired.polynomial(), expect, "seed {seed}");
                    // Depth-preserving (rewiring can only shrink).
                    assert!(stats(&rewired).depth <= stats(&big).depth);
                }
                None => assert!(expect.is_empty(), "seed {seed}"),
            }
        }
    }

    #[test]
    fn expansion_blowup_is_constant_factor() {
        let re = Regex::parse("(a b)+").unwrap();
        let mut alphabet = grammar::Alphabet::new();
        let dfa = Dfa::compile(&re, &mut alphabet);
        let pumping = RegularPumping::from_dfa(&dfa).unwrap();
        let names = alphabet.clone();
        let (g, s, t) = generators::layered(3, 4, 1.0, "E", 0);
        let inst = tc_to_rpq(&g, s, t, &pumping, &|t| names.name(t).to_owned());
        let blowup = pumping.x.len() + pumping.y.len() + pumping.z.len();
        assert!(inst.graph.num_edges() <= g.num_edges() * pumping.y.len() + blowup);
        // Exactly one Original origin per source edge.
        let originals = inst
            .origins
            .iter()
            .filter(|o| matches!(o, ExpandedEdgeOrigin::Original(_)))
            .count();
        assert_eq!(originals, g.num_edges());
    }
}
