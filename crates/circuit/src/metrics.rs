//! Size, depth and formula-size accounting (paper §2.5, §3).
//!
//! * **size** — number of live gates (the paper's `|F|`);
//! * **depth** — longest input-to-output path (fan-in-2 gates);
//! * **formula size** — the size of the formula obtained by expanding the
//!   DAG into a tree (Proposition 3.3: a circuit of depth `d` expands to a
//!   formula of size ≤ 2^d and equal depth). Saturating `u128`: the
//!   super-polynomial regimes of Theorems 5.4/5.10 overflow `u64` by
//!   design.

use crate::arena::{Circuit, Gate};

/// Metrics of the live (output-reachable) part of a circuit.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CircuitStats {
    /// Total live gates (inputs + constants + internal).
    pub num_gates: usize,
    /// Live ⊕-gates.
    pub num_add: usize,
    /// Live ⊗-gates.
    pub num_mul: usize,
    /// Live input gates.
    pub num_inputs: usize,
    /// Depth (edges on the longest path; inputs/constants have depth 0).
    pub depth: usize,
    /// Size of the tree expansion (number of nodes), saturating.
    pub formula_size: u128,
}

/// Compute all metrics in one topological pass.
pub fn stats(circuit: &Circuit) -> CircuitStats {
    let live = circuit.live_mask();
    let gates = circuit.gates();
    let mut depth = vec![0usize; gates.len()];
    let mut fsize = vec![0u128; gates.len()];
    let mut num_add = 0;
    let mut num_mul = 0;
    let mut num_inputs = 0;
    let mut num_gates = 0;
    for (i, gate) in gates.iter().enumerate() {
        if !live[i] {
            continue;
        }
        num_gates += 1;
        match *gate {
            Gate::Zero | Gate::One => {
                fsize[i] = 1;
            }
            Gate::Input(_) => {
                num_inputs += 1;
                fsize[i] = 1;
            }
            Gate::Add(a, b) | Gate::Mul(a, b) => {
                if matches!(gate, Gate::Add(_, _)) {
                    num_add += 1;
                } else {
                    num_mul += 1;
                }
                depth[i] = 1 + depth[a as usize].max(depth[b as usize]);
                fsize[i] = 1u128
                    .saturating_add(fsize[a as usize])
                    .saturating_add(fsize[b as usize]);
            }
        }
    }
    let out = circuit.output() as usize;
    CircuitStats {
        num_gates,
        num_add,
        num_mul,
        num_inputs,
        depth: depth[out],
        formula_size: fsize[out],
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::arena::CircuitBuilder;

    #[test]
    fn chain_vs_balanced_depth() {
        // Left-deep chain of 8 adds: depth 8. Balanced: depth 3.
        let mut b = CircuitBuilder::new();
        let inputs: Vec<_> = (0..9).map(|v| b.input(v)).collect();
        let mut acc = inputs[0];
        for &x in &inputs[1..] {
            acc = b.add(acc, x);
        }
        let chain = b.clone().finish(acc);
        assert_eq!(stats(&chain).depth, 8);

        let mut b2 = CircuitBuilder::new();
        let inputs2: Vec<_> = (0..8).map(|v| b2.input(v)).collect();
        let out = b2.add_many(&inputs2);
        let balanced = b2.finish(out);
        assert_eq!(stats(&balanced).depth, 3);
    }

    #[test]
    fn formula_size_doubles_on_shared_gates() {
        // s = x0 ⊕ x1; out = s ⊗ s. Circuit: 4 live gates; formula expands
        // s twice: size = 1 + 3 + 3 = 7.
        let mut b = CircuitBuilder::new();
        let x0 = b.input(0);
        let x1 = b.input(1);
        let s = b.add(x0, x1);
        let out = b.mul(s, s);
        let c = b.finish(out);
        let st = stats(&c);
        assert_eq!(st.num_gates, 4);
        assert_eq!(st.formula_size, 7);
        assert_eq!(st.depth, 2);
    }

    #[test]
    fn formula_size_saturates_instead_of_overflowing() {
        // A tower of 200 squarings: formula size ≈ 2^200 ≫ u128? No — 2^201-1
        // fits in u128 only below 2^128; saturation must kick in.
        let mut b = CircuitBuilder::new();
        let mut g = b.input(0);
        for _ in 0..200 {
            g = b.mul(g, g);
        }
        let c = b.finish(g);
        assert_eq!(stats(&c).formula_size, u128::MAX);
    }

    #[test]
    fn counts_by_gate_kind() {
        let mut b = CircuitBuilder::new();
        let x0 = b.input(0);
        let x1 = b.input(1);
        let x2 = b.input(2);
        let m = b.mul(x0, x1);
        let a = b.add(m, x2);
        let c = b.finish(a);
        let st = stats(&c);
        assert_eq!((st.num_add, st.num_mul, st.num_inputs), (1, 1, 3));
        assert_eq!(st.num_gates, 5);
    }
}
