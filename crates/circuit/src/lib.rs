//! Circuits and formulas for Datalog provenance over semirings — the
//! constructions of Fan, Koutris & Roy (PODS 2025).
//!
//! * [`arena`] — hash-consed, semiring-agnostic circuit DAGs (§2.5);
//! * [`metrics`] — size / depth / formula-size accounting (§3);
//! * [`formula`] — formula expansion (Proposition 3.3);
//! * [`constructions`] — one module per constructive theorem:
//!   grounded/layered (Thm 3.1, 4.3), DAG (Thm 3.5), Bellman–Ford
//!   (Thm 5.6), repeated squaring (Thm 5.7), magic-set finite RPQs
//!   (Thm 5.8), product-graph RPQs (Thm 5.9), Ullman–Van Gelder (Thm 6.2);
//! * [`reductions`] — the depth-preserving lower-bound reductions
//!   (Thms 5.9, 5.11);
//! * [`verify`] — oracles tying every construction back to the paper's
//!   definition of provenance.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod arena;
pub mod constructions;
pub mod formula;
pub mod metrics;
pub mod reductions;
pub mod verify;

pub use provcirc_error::Error;

pub use arena::{Circuit, CircuitBuilder, Gate, GateId, InputSubst};
pub use constructions::bellman_ford::{bellman_ford_all, bellman_ford_circuit, bellman_ford_graph};
pub use constructions::dag::{dag_path_circuit, dag_path_circuit_graph};
pub use constructions::grounded::grounded_circuit;
pub use constructions::magic_rpq::{finite_rpq_circuit, FiniteRpqCircuit};
pub use constructions::rpq::{rpq_circuit, sum_circuits, TcStrategy};
pub use constructions::squaring::{squaring_all, squaring_graph, SquaringResult};
pub use constructions::uvg::uvg_circuit;
pub use constructions::MultiOutput;
pub use formula::{expand, Formula, FormulaTooLarge};
pub use metrics::{stats, CircuitStats};
pub use reductions::{
    tc_to_cfg, tc_to_monadic_reachability, tc_to_rpq, ExpandedEdgeOrigin, ExpandedInstance,
    MonadicReductionInstance,
};
