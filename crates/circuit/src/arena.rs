//! Hash-consed circuit arena (paper §2.5).
//!
//! A circuit over a semiring is a DAG with fan-in-2 ⊕/⊗ gates, inputs
//! labeled by provenance variables, and the constants 0 and 1. Circuits are
//! *semiring-agnostic structures*: interpretation happens at evaluation
//! time, matching the paper's view of provenance polynomials as formal
//! expressions.
//!
//! The builder hash-conses gates (structurally identical gates share an id)
//! and applies only the unit/annihilator simplifications valid in **every**
//! semiring (`0 ⊕ x = x`, `0 ⊗ x = 0`, `1 ⊗ x = x`), so the produced
//! polynomial is preserved exactly. Consing gives the layered constructions
//! structural fixpoint detection for free: when a layer reproduces the
//! previous layer's gate ids, the fixpoint is reached.

use std::collections::HashMap;

use provcirc_error::Error;
use semiring::valuation::{Valuation, VarTags};
use semiring::{Absorptive, Semiring, Sorp, VarId};
use telemetry::{Recorder, Stage, NOOP};

/// A gate id (index into the arena).
pub type GateId = u32;

/// A circuit gate.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Gate {
    /// The constant 0.
    Zero,
    /// The constant 1.
    One,
    /// An input gate carrying a provenance variable.
    Input(VarId),
    /// A ⊕-gate.
    Add(GateId, GateId),
    /// A ⊗-gate.
    Mul(GateId, GateId),
}

/// An immutable circuit with a designated output gate.
#[derive(Clone, Debug)]
pub struct Circuit {
    gates: Vec<Gate>,
    output: GateId,
}

/// Incremental circuit builder with hash-consing.
#[derive(Clone, Debug)]
pub struct CircuitBuilder {
    gates: Vec<Gate>,
    cache: HashMap<Gate, GateId>,
}

impl Default for CircuitBuilder {
    fn default() -> Self {
        Self::new()
    }
}

impl CircuitBuilder {
    /// A builder pre-seeded with the constants.
    pub fn new() -> Self {
        let mut b = CircuitBuilder {
            gates: Vec::new(),
            cache: HashMap::new(),
        };
        b.intern(Gate::Zero);
        b.intern(Gate::One);
        b
    }

    fn intern(&mut self, gate: Gate) -> GateId {
        if let Some(&id) = self.cache.get(&gate) {
            return id;
        }
        let id = self.gates.len() as GateId;
        self.gates.push(gate);
        self.cache.insert(gate, id);
        id
    }

    /// The constant 0.
    pub fn zero(&mut self) -> GateId {
        self.intern(Gate::Zero)
    }

    /// The constant 1.
    pub fn one(&mut self) -> GateId {
        self.intern(Gate::One)
    }

    /// An input gate for a provenance variable.
    pub fn input(&mut self, v: VarId) -> GateId {
        self.intern(Gate::Input(v))
    }

    /// `a ⊕ b`, simplified by `0 ⊕ x = x` and normalized by commutativity.
    pub fn add(&mut self, a: GateId, b: GateId) -> GateId {
        let zero = self.zero();
        if a == zero {
            return b;
        }
        if b == zero {
            return a;
        }
        let (a, b) = if a <= b { (a, b) } else { (b, a) };
        self.intern(Gate::Add(a, b))
    }

    /// `a ⊗ b`, simplified by `0 ⊗ x = 0`, `1 ⊗ x = x`, normalized by
    /// commutativity.
    pub fn mul(&mut self, a: GateId, b: GateId) -> GateId {
        let zero = self.zero();
        let one = self.one();
        if a == zero || b == zero {
            return zero;
        }
        if a == one {
            return b;
        }
        if b == one {
            return a;
        }
        let (a, b) = if a <= b { (a, b) } else { (b, a) };
        self.intern(Gate::Mul(a, b))
    }

    /// Balanced ⊕-sum of many gates (logarithmic depth, paper Thm 4.3's
    /// "commutative and associative summation with a circuit of logarithmic
    /// depth").
    pub fn add_many(&mut self, gates: &[GateId]) -> GateId {
        self.balanced(gates, CircuitBuilder::add, Gate::Zero)
    }

    /// Balanced ⊗-product of many gates.
    pub fn mul_many(&mut self, gates: &[GateId]) -> GateId {
        self.balanced(gates, CircuitBuilder::mul, Gate::One)
    }

    fn balanced(
        &mut self,
        gates: &[GateId],
        op: fn(&mut Self, GateId, GateId) -> GateId,
        identity: Gate,
    ) -> GateId {
        match gates.len() {
            0 => self.intern(identity),
            1 => gates[0],
            _ => {
                let mid = gates.len() / 2;
                let l = self.balanced(&gates[..mid], op, identity);
                let r = self.balanced(&gates[mid..], op, identity);
                op(self, l, r)
            }
        }
    }

    /// Number of gates currently in the arena (including dead ones).
    pub fn arena_size(&self) -> usize {
        self.gates.len()
    }

    /// Finalize with the given output gate.
    pub fn finish(self, output: GateId) -> Circuit {
        assert!((output as usize) < self.gates.len(), "output gate exists");
        Circuit {
            gates: self.gates,
            output,
        }
    }
}

impl Circuit {
    /// The gate table (children have smaller ids — topological order).
    pub fn gates(&self) -> &[Gate] {
        &self.gates
    }

    /// The output gate.
    pub fn output(&self) -> GateId {
        self.output
    }

    /// Gates reachable from the output (the *live* circuit; dead gates in
    /// the arena are ignored by all metrics).
    pub fn live_mask(&self) -> Vec<bool> {
        let mut live = vec![false; self.gates.len()];
        let mut stack = vec![self.output];
        live[self.output as usize] = true;
        while let Some(g) = stack.pop() {
            match self.gates[g as usize] {
                Gate::Add(a, b) | Gate::Mul(a, b) => {
                    for c in [a, b] {
                        if !live[c as usize] {
                            live[c as usize] = true;
                            stack.push(c);
                        }
                    }
                }
                _ => {}
            }
        }
        live
    }

    /// Evaluate over a semiring under an input valuation.
    pub fn eval<S, V>(&self, assign: &V) -> S
    where
        S: Semiring,
        V: Valuation<S> + ?Sized,
    {
        let live = self.live_mask();
        let mut vals: Vec<Option<S>> = vec![None; self.gates.len()];
        for (i, gate) in self.gates.iter().enumerate() {
            if !live[i] {
                continue;
            }
            let v = match *gate {
                Gate::Zero => S::zero(),
                Gate::One => S::one(),
                Gate::Input(x) => assign.value(x),
                Gate::Add(a, b) => {
                    let (va, vb) = (vals[a as usize].as_ref(), vals[b as usize].as_ref());
                    va.expect("topo order").add(vb.expect("topo order"))
                }
                Gate::Mul(a, b) => {
                    let (va, vb) = (vals[a as usize].as_ref(), vals[b as usize].as_ref());
                    va.expect("topo order").mul(vb.expect("topo order"))
                }
            };
            vals[i] = Some(v);
        }
        vals[self.output as usize].clone().expect("output is live")
    }

    /// Parallel [`eval`](Circuit::eval): level-synchronous bottom-up
    /// evaluation on up to `threads` workers. See
    /// [`eval_par_recorded`](Circuit::eval_par_recorded).
    pub fn eval_par<S, V>(&self, assign: &V, threads: usize) -> S
    where
        S: Semiring,
        V: Valuation<S> + Sync + ?Sized,
    {
        self.eval_par_recorded(assign, threads, &NOOP)
    }

    /// Parallel [`eval`](Circuit::eval), reporting per-worker shard stats
    /// under [`Stage::CircuitEval`].
    ///
    /// Live gates are grouped into *topological levels* (constants and
    /// inputs at level 0, every ⊕/⊗ gate one past its deepest child) and
    /// each level is evaluated level-synchronously: the gate ids of one
    /// level are split into steal-granularity chunks
    /// ([`datalog::par::chunk_bounds`]) and farmed out to the
    /// work-stealing scheduler, with every task reading the value vector
    /// immutably — a gate's children always sit in strictly lower levels,
    /// so no task ever reads a slot written during its own level. The
    /// main thread scatters each level's results back in gate-id order
    /// (moves, not ⊕-merges). Each gate's value is computed by exactly
    /// the expression the sequential pass uses, so the result is
    /// **bit-identical** to [`eval`](Circuit::eval) at every thread
    /// count; `threads <= 1` delegates to the sequential pass outright.
    pub fn eval_par_recorded<S, V>(&self, assign: &V, threads: usize, rec: &dyn Recorder) -> S
    where
        S: Semiring,
        V: Valuation<S> + Sync + ?Sized,
    {
        if threads <= 1 {
            return self.eval(assign);
        }
        let live = self.live_mask();
        let mut level: Vec<u32> = vec![0; self.gates.len()];
        let mut max_level = 0u32;
        for (i, gate) in self.gates.iter().enumerate() {
            if !live[i] {
                continue;
            }
            if let Gate::Add(a, b) | Gate::Mul(a, b) = *gate {
                level[i] = 1 + level[a as usize].max(level[b as usize]);
                max_level = max_level.max(level[i]);
            }
        }
        let mut layers: Vec<Vec<GateId>> = vec![Vec::new(); max_level as usize + 1];
        for (i, is_live) in live.iter().enumerate() {
            if *is_live {
                layers[level[i] as usize].push(i as GateId);
            }
        }
        let mut vals: Vec<Option<S>> = vec![None; self.gates.len()];
        for ids in &layers {
            let chunks = datalog::par::chunk_bounds(ids.len(), threads);
            let vals_ref = &vals;
            let outs = datalog::par::run_indexed_recorded(
                chunks.len(),
                threads,
                rec,
                Stage::CircuitEval,
                |out: &Vec<S>| out.len() as u64,
                |c| {
                    let (lo, hi) = chunks[c];
                    ids[lo..hi]
                        .iter()
                        .map(|&g| match self.gates[g as usize] {
                            Gate::Zero => S::zero(),
                            Gate::One => S::one(),
                            Gate::Input(x) => assign.value(x),
                            Gate::Add(a, b) => {
                                let (va, vb) =
                                    (vals_ref[a as usize].as_ref(), vals_ref[b as usize].as_ref());
                                va.expect("level order").add(vb.expect("level order"))
                            }
                            Gate::Mul(a, b) => {
                                let (va, vb) =
                                    (vals_ref[a as usize].as_ref(), vals_ref[b as usize].as_ref());
                                va.expect("level order").mul(vb.expect("level order"))
                            }
                        })
                        .collect::<Vec<S>>()
                },
            );
            let mut slots = ids.iter();
            for out in outs {
                for v in out {
                    let g = *slots.next().expect("chunks cover the layer");
                    vals[g as usize] = Some(v);
                }
            }
        }
        vals[self.output as usize].clone().expect("output is live")
    }

    /// The canonical provenance polynomial this circuit computes over every
    /// absorptive semiring: its evaluation in `Sorp(X)` (see §2.5 — the
    /// polynomial the circuit *computes*, with absorption applied).
    pub fn polynomial(&self) -> Sorp {
        self.eval(&VarTags)
    }

    /// Evaluate over an absorptive semiring via the polynomial — slow oracle
    /// used in tests to double-check direct evaluation.
    pub fn eval_via_polynomial<S, V>(&self, assign: &V) -> S
    where
        S: Absorptive,
        V: Valuation<S> + ?Sized,
    {
        self.polynomial().eval(assign)
    }

    /// Rewire inputs: each input variable is either renamed or replaced by
    /// the constant 1 — the input-substitution step of the paper's circuit
    /// reductions (Thms 5.9, 5.11, 6.8: "connect one of the edges to the
    /// input variable … and connect all other edges to 1 ∈ S").
    pub fn substitute_inputs(&self, subst: &dyn Fn(VarId) -> InputSubst) -> Circuit {
        let mut b = CircuitBuilder::new();
        let mut map: Vec<GateId> = Vec::with_capacity(self.gates.len());
        for gate in &self.gates {
            let id = match *gate {
                Gate::Zero => b.zero(),
                Gate::One => b.one(),
                Gate::Input(x) => match subst(x) {
                    InputSubst::Var(v) => b.input(v),
                    InputSubst::One => b.one(),
                    InputSubst::Zero => b.zero(),
                },
                Gate::Add(x, y) => {
                    let (mx, my) = (map[x as usize], map[y as usize]);
                    b.add(mx, my)
                }
                Gate::Mul(x, y) => {
                    let (mx, my) = (map[x as usize], map[y as usize]);
                    b.mul(mx, my)
                }
            };
            map.push(id);
        }
        b.finish(map[self.output as usize])
    }

    /// Structural sanity checks: children precede parents, output in range.
    pub fn validate(&self) -> Result<(), Error> {
        for (i, gate) in self.gates.iter().enumerate() {
            if let Gate::Add(a, b) | Gate::Mul(a, b) = *gate {
                if a as usize >= i || b as usize >= i {
                    return Err(Error::InvalidCircuit(format!(
                        "gate {i} references a later gate"
                    )));
                }
            }
        }
        if self.output as usize >= self.gates.len() {
            return Err(Error::InvalidCircuit("output out of range".into()));
        }
        Ok(())
    }
}

/// Input substitution for [`Circuit::substitute_inputs`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum InputSubst {
    /// Rename to another variable.
    Var(VarId),
    /// Replace by the constant 1 (the reductions' "wire to 1").
    One,
    /// Replace by the constant 0 (delete the input).
    Zero,
}

#[cfg(test)]
mod tests {
    use super::*;
    use semiring::prelude::*;

    #[test]
    fn consing_shares_structure() {
        let mut b = CircuitBuilder::new();
        let x = b.input(0);
        let y = b.input(1);
        let s1 = b.add(x, y);
        let s2 = b.add(y, x); // commutativity-normalized
        assert_eq!(s1, s2);
        let p1 = b.mul(s1, x);
        let p2 = b.mul(x, s2);
        assert_eq!(p1, p2);
    }

    #[test]
    fn unit_simplifications() {
        let mut b = CircuitBuilder::new();
        let x = b.input(0);
        let zero = b.zero();
        let one = b.one();
        assert_eq!(b.add(x, zero), x);
        assert_eq!(b.mul(x, one), x);
        assert_eq!(b.mul(x, zero), zero);
    }

    #[test]
    fn eval_over_multiple_semirings() {
        // (x0 ⊗ x1) ⊕ x2
        let mut b = CircuitBuilder::new();
        let x0 = b.input(0);
        let x1 = b.input(1);
        let x2 = b.input(2);
        let m = b.mul(x0, x1);
        let out = b.add(m, x2);
        let c = b.finish(out);
        c.validate().unwrap();

        assert_eq!(c.eval(&from_fn(|_| Bool(true))), Bool(true));
        assert_eq!(
            c.eval(&from_fn(|v| Tropical::new(v as u64 + 1))),
            Tropical::new(3) // min(1+2, 3)
        );
        assert_eq!(
            c.eval(&UnitWeights::new(Counting::new(2))),
            Counting::new(6)
        ); // 2*2+2
        let poly = c.polynomial();
        assert_eq!(poly.to_string(), "x0*x1 + x2");
    }

    #[test]
    fn polynomial_applies_absorption() {
        // x0 ⊕ (x0 ⊗ x1) collapses to x0 in Sorp.
        let mut b = CircuitBuilder::new();
        let x0 = b.input(0);
        let x1 = b.input(1);
        let m = b.mul(x0, x1);
        let out = b.add(x0, m);
        let c = b.finish(out);
        assert_eq!(c.polynomial(), Sorp::var(0));
    }

    #[test]
    fn add_many_is_balanced() {
        let mut b = CircuitBuilder::new();
        let inputs: Vec<GateId> = (0..64).map(|v| b.input(v)).collect();
        let out = b.add_many(&inputs);
        let c = b.finish(out);
        let stats = crate::metrics::stats(&c);
        assert_eq!(stats.depth, 6); // log2(64)
        assert_eq!(stats.num_add, 63);
    }

    #[test]
    fn substitute_inputs_matches_paper_rewiring() {
        // x0 ⊗ x1 with x1 ↦ 1 becomes x0' (renamed to 7).
        let mut b = CircuitBuilder::new();
        let x0 = b.input(0);
        let x1 = b.input(1);
        let m = b.mul(x0, x1);
        let c = b.finish(m);
        let c2 = c.substitute_inputs(&|v| {
            if v == 0 {
                InputSubst::Var(7)
            } else {
                InputSubst::One
            }
        });
        assert_eq!(c2.polynomial(), Sorp::var(7));
    }

    #[test]
    fn eval_ignores_dead_gates() {
        let mut b = CircuitBuilder::new();
        let x = b.input(0);
        let y = b.input(1);
        let _dead = b.mul(x, y);
        let c = b.finish(x);
        assert_eq!(
            c.eval(&from_fn(|v| Counting::new(v as u64 + 5))),
            Counting::new(5)
        );
        let stats = crate::metrics::stats(&c);
        assert_eq!(stats.num_gates, 1);
    }

    #[test]
    fn substitute_zero_deletes_monomials() {
        // (x0 ⊗ x1) ⊕ x2 with x1 ↦ 0 leaves only x2.
        let mut b = CircuitBuilder::new();
        let x0 = b.input(0);
        let x1 = b.input(1);
        let x2 = b.input(2);
        let m = b.mul(x0, x1);
        let out = b.add(m, x2);
        let c = b.finish(out);
        let c2 = c.substitute_inputs(&|v| {
            if v == 1 {
                InputSubst::Zero
            } else {
                InputSubst::Var(v)
            }
        });
        assert_eq!(c2.polynomial(), Sorp::var(2));
    }

    #[test]
    fn validate_rejects_forward_references() {
        // Hand-build a malformed circuit: gate 2 references gate 3.
        let c = Circuit {
            gates: vec![Gate::Zero, Gate::One, Gate::Add(3, 1), Gate::Input(0)],
            output: 2,
        };
        assert!(c.validate().is_err());
    }

    #[test]
    fn eval_par_is_bit_identical_to_sequential() {
        // A multi-level circuit with shared sub-structure and a dead gate.
        let mut b = CircuitBuilder::new();
        let xs: Vec<GateId> = (0..40).map(|v| b.input(v)).collect();
        let sums: Vec<GateId> = xs.chunks(4).map(|c| b.add_many(c)).collect();
        let prods: Vec<GateId> = sums.windows(2).map(|w| b.mul(w[0], w[1])).collect();
        let _dead = b.mul(xs[0], xs[2]);
        let out = b.add_many(&prods);
        let c = b.finish(out);

        let assign = from_fn(|v: VarId| Tropical::new((v as u64 * 7) % 11));
        let seq: Tropical = c.eval(&assign);
        for threads in [1, 2, 4, 8] {
            assert_eq!(c.eval_par(&assign, threads), seq, "{threads} threads");
        }
        // Free absorptive semiring: the polynomial itself must agree.
        let poly: Sorp = c.eval(&VarTags);
        for threads in [2, 4] {
            assert_eq!(c.eval_par::<Sorp, _>(&VarTags, threads), poly);
        }
    }

    #[test]
    fn eval_via_polynomial_agrees() {
        let mut b = CircuitBuilder::new();
        let xs: Vec<GateId> = (0..6).map(|v| b.input(v)).collect();
        let m1 = b.mul_many(&xs[0..3]);
        let m2 = b.mul_many(&xs[2..6]);
        let out = b.add(m1, m2);
        let c = b.finish(out);
        let assign = from_fn(|v: VarId| Tropical::new((v as u64 * 3) % 5 + 1));
        assert_eq!(c.eval(&assign), c.eval_via_polynomial(&assign));
    }
}
