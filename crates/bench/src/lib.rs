//! Shared workloads and reporting helpers for the experiment harness and
//! the criterion benches.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use circuit::CircuitStats;
use datalog::{Database, GroundedProgram, Program};
use graphgen::LabeledDigraph;

/// Ground a program over a graph-backed database.
pub fn ground_on_graph(
    program: &Program,
    graph: &LabeledDigraph,
) -> (Program, Database, GroundedProgram) {
    let mut p = program.clone();
    let (db, _) = Database::from_graph(&mut p, graph);
    let gp = datalog::ground(&p, &db).expect("grounding");
    (p, db, gp)
}

/// The grounded fact index of `target(v_src, v_dst)`, if derivable.
pub fn graph_fact(
    p: &Program,
    db: &Database,
    gp: &GroundedProgram,
    src: usize,
    dst: usize,
) -> Option<usize> {
    let s = db.node_const(src)?;
    let d = db.node_const(dst)?;
    gp.fact(p.target, &[s, d])
}

/// Wall-clock statistics of repeated runs of one workload.
///
/// `best_ms` is the harness's headline number (minimum suppresses
/// allocator and scheduler noise); `mean_ms` and `samples` are reported
/// alongside it in the trajectory JSON so the committed numbers disclose
/// the spread the minimum discards.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct TimingStats {
    /// Minimum wall time over the runs, milliseconds.
    pub best_ms: f64,
    /// Arithmetic mean wall time over the runs, milliseconds.
    pub mean_ms: f64,
    /// Number of runs measured.
    pub samples: usize,
}

/// Time `runs` executions of `f`: full [`TimingStats`] plus the last
/// result — the experiment harness's stopwatch.
pub fn time_stats_ms<T>(runs: usize, mut f: impl FnMut() -> T) -> (TimingStats, T) {
    assert!(runs > 0, "need at least one run");
    let mut best = f64::INFINITY;
    let mut total = 0.0;
    let mut out = None;
    for _ in 0..runs {
        let start = std::time::Instant::now();
        let value = f();
        let ms = start.elapsed().as_secs_f64() * 1e3;
        best = best.min(ms);
        total += ms;
        out = Some(value);
    }
    (
        TimingStats {
            best_ms: best,
            mean_ms: total / runs as f64,
            samples: runs,
        },
        out.expect("runs > 0"),
    )
}

/// Best-of-`runs` wall time of `f` in milliseconds, plus the last result —
/// the minimum-only view of [`time_stats_ms`].
pub fn time_best_ms<T>(runs: usize, f: impl FnMut() -> T) -> (f64, T) {
    let (stats, out) = time_stats_ms(runs, f);
    (stats.best_ms, out)
}

/// Format circuit stats compactly.
pub fn fmt_stats(st: &CircuitStats) -> String {
    format!(
        "gates={:>8} depth={:>5} formula={}",
        st.num_gates,
        st.depth,
        fmt_u128(st.formula_size)
    )
}

/// Human-friendly saturating u128.
pub fn fmt_u128(x: u128) -> String {
    if x == u128::MAX {
        ">10^38 (saturated)".to_owned()
    } else if x > 1_000_000_000_000 {
        format!("{:.2e}", x as f64)
    } else {
        x.to_string()
    }
}

/// Least-squares slope of `log(y)` against `log(x)` — the measured growth
/// exponent of a series.
pub fn fitted_exponent(points: &[(f64, f64)]) -> f64 {
    let n = points.len() as f64;
    let (mut sx, mut sy, mut sxx, mut sxy) = (0.0, 0.0, 0.0, 0.0);
    for &(x, y) in points {
        let (lx, ly) = (x.ln(), y.max(1e-9).ln());
        sx += lx;
        sy += ly;
        sxx += lx * lx;
        sxy += lx * ly;
    }
    (n * sxy - sx * sy) / (n * sxx - sx * sx)
}

/// Ratio series `y / f(x)` per point — a flat series means `y = Θ(f)`.
pub fn normalized(points: &[(f64, f64)], f: impl Fn(f64) -> f64) -> Vec<f64> {
    points.iter().map(|&(x, y)| y / f(x)).collect()
}

/// A node at hop-distance exactly `d` from `src`, if any.
pub fn target_at_distance(g: &LabeledDigraph, src: u32, d: u64) -> Option<u32> {
    g.bfs_distances(src)
        .iter()
        .position(|&x| x == Some(d))
        .map(|v| v as u32)
}

/// The farthest reachable node from `src` (ties broken by smallest id);
/// `None` when nothing but `src` is reachable.
pub fn farthest_reachable(g: &LabeledDigraph, src: u32) -> Option<u32> {
    let dist = g.bfs_distances(src);
    let best = dist.iter().flatten().max().copied()?;
    if best == 0 {
        return None;
    }
    dist.iter().position(|&x| x == Some(best)).map(|v| v as u32)
}

/// The `(src, dst)` pair with the greatest finite hop distance, scanning
/// all sources — guarantees a derivable, long-path query fact on any graph
/// with at least one edge.
pub fn best_long_pair(g: &LabeledDigraph) -> Option<(u32, u32)> {
    let mut best: Option<(u64, u32, u32)> = None;
    for src in 0..g.num_nodes() as u32 {
        for (v, d) in g.bfs_distances(src).iter().enumerate() {
            if let Some(d) = *d {
                if d > 0 && best.is_none_or(|(bd, _, _)| d > bd) {
                    best = Some((d, src, v as u32));
                }
            }
        }
    }
    best.map(|(_, s, t)| (s, t))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn time_best_returns_result_and_finite_time() {
        let (ms, v) = time_best_ms(3, || 6 * 7);
        assert_eq!(v, 42);
        assert!(ms.is_finite() && ms >= 0.0);
    }

    #[test]
    fn time_stats_report_best_mean_and_samples() {
        let (stats, v) = time_stats_ms(4, || {
            std::thread::sleep(std::time::Duration::from_micros(100));
            "done"
        });
        assert_eq!(v, "done");
        assert_eq!(stats.samples, 4);
        // best is a minimum, so it can never exceed the mean.
        assert!(stats.best_ms <= stats.mean_ms, "{stats:?}");
        assert!(stats.best_ms > 0.0 && stats.mean_ms.is_finite());
    }

    #[test]
    fn exponent_fit_recovers_powers() {
        let quad: Vec<(f64, f64)> = (1..=6).map(|i| (i as f64, (i * i) as f64)).collect();
        assert!((fitted_exponent(&quad) - 2.0).abs() < 1e-9);
        let lin: Vec<(f64, f64)> = (1..=6).map(|i| (i as f64, 3.0 * i as f64)).collect();
        assert!((fitted_exponent(&lin) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn graph_fact_roundtrip() {
        let p = datalog::programs::transitive_closure();
        let g = graphgen::generators::path(3, "E");
        let (p, db, gp) = ground_on_graph(&p, &g);
        assert!(graph_fact(&p, &db, &gp, 0, 3).is_some());
        assert!(graph_fact(&p, &db, &gp, 3, 0).is_none());
    }

    #[test]
    fn distance_helpers() {
        let g = graphgen::generators::path(4, "E");
        assert_eq!(target_at_distance(&g, 0, 3), Some(3));
        assert_eq!(target_at_distance(&g, 0, 9), None);
        assert_eq!(farthest_reachable(&g, 0), Some(4));
        assert_eq!(farthest_reachable(&g, 4), None);
    }

    #[test]
    fn normalized_is_flat_for_matching_growth() {
        let pts: Vec<(f64, f64)> = (2..8)
            .map(|i| {
                let x = (1 << i) as f64;
                (x, 3.0 * x * x.log2())
            })
            .collect();
        let norm = normalized(&pts, |x| x * x.log2());
        for v in &norm {
            assert!((v - 3.0).abs() < 1e-9);
        }
    }
}
