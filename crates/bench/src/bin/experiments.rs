//! The experiment harness: regenerates every table and figure of
//! *Circuits and Formulas for Datalog over Semirings* (PODS 2025).
//!
//! ```text
//! cargo run -p bench --release --bin experiments -- all
//! cargo run -p bench --release --bin experiments -- f1 t1-regular
//! ```
//!
//! Each experiment prints the paper's claim next to the measured values;
//! `EXPERIMENTS.md` records a full run.

use bench::{fitted_exponent, fmt_u128, graph_fact, ground_on_graph, normalized};
use circuit::TcStrategy;
use datalog::programs;
use graphgen::generators;
use provcirc::{compile_graph_fact, Strategy};
use semiring::prelude::*;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let all = args.is_empty() || args.iter().any(|a| a == "all");
    let want = |name: &str| all || args.iter().any(|a| a == name);

    if want("f1") {
        figure1();
    }
    if want("t1-finite") {
        table1_finite();
    }
    if want("t1-regular") {
        table1_regular();
    }
    if want("t1-cfg") {
        table1_cfg();
    }
    if want("depth-dichotomy") {
        depth_dichotomy();
    }
    if want("formula-size") {
        formula_size();
    }
    if want("boundedness") {
        boundedness();
    }
    if want("chom") {
        chom();
    }
    if want("fringe") {
        fringe();
    }
    if want("reductions") {
        reductions();
    }
    if want("layered") {
        layered();
    }
    if want("stability") {
        stability();
    }
    if want("crossover") {
        crossover();
    }
    if want("seminaive") {
        seminaive();
    }
    if want("grounding") {
        grounding();
    }
    if want("parallel") {
        parallel();
    }
    if want("serving") {
        serving();
    }
    if want("incremental") {
        incremental();
    }
}

fn header(title: &str, claim: &str) {
    println!("\n== {title} ==");
    println!("   paper: {claim}");
}

/// Figure 1 + §2.4: the worked transitive-closure example.
fn figure1() {
    header(
        "F1 · Figure 1 / §2.4",
        "T(s,t) has 3 tight proof trees; p = x_{s,u1}x_{u1,v1}x_{v1,t} ⊕ x_{s,u1}x_{u1,v2}x_{v2,t} ⊕ x_{s,u2}x_{u2,v2}x_{v2,t}",
    );
    let mut g = graphgen::LabeledDigraph::new(6);
    let names = ["s→u1", "s→u2", "u1→v1", "u1→v2", "u2→v2", "v1→t", "v2→t"];
    for (u, v) in [(0, 1), (0, 2), (1, 3), (1, 4), (2, 4), (3, 5), (4, 5)] {
        g.add_edge(u, v, "E");
    }
    let (p, db, gp) = ground_on_graph(&programs::transitive_closure(), &g);
    let fact = graph_fact(&p, &db, &gp, 0, 5).expect("T(s,t) derivable");
    let trees = datalog::tight_proof_trees(&gp, fact, 1000);
    println!("   measured: {} tight proof trees", trees.trees.len());
    let poly = datalog::provenance_polynomial(&gp, fact, 1000).unwrap();
    println!(
        "   measured provenance polynomial ({} monomials):",
        poly.len()
    );
    for m in poly.monomials() {
        let label: Vec<&str> = m.support().map(|v| names[v as usize]).collect();
        println!("     {}  [{}]", m, label.join(" · "));
    }
    // Tropical interpretation (paper §2.4): min path weight with unit
    // weights = 3.
    let c = compile_graph_fact(&p, &g, 0, 5, Strategy::Auto).unwrap();
    println!(
        "   tropical value (unit weights): {}   [paper: weight-3 shortest path]",
        c.circuit.eval(&UnitWeights::new(Tropical::new(1)))
    );
}

/// Table 1, row "finite": size O(m) / Ω(m), depth O(log n) / Ω(log n).
fn table1_finite() {
    header(
        "T1-finite · Table 1 row 1 (finite CFG: E·E·E)",
        "circuit size Θ(m), depth Θ(log n); polynomial-size formulas (Thm 5.8, Thm 5.3)",
    );
    let program = datalog::parse_program(
        "P3(X,Y) :- P2(X,Z), E(Z,Y).\nP2(X,Y) :- P1(X,Z), E(Z,Y).\nP1(X,Y) :- E(X,Y).\n@target P3",
    )
    .unwrap();
    // The Θ(m) object is the whole-query circuit (all targets at once): we
    // report the construction's shared arena. Per-fact cones are tiny —
    // that's the point of the magic rewriting. The queried target is a node
    // at distance exactly 3 so the fact is derivable.
    let mut pts_size = Vec::new();
    let mut pts_depth = Vec::new();
    println!(
        "   {:>6} {:>8} {:>12} {:>12} {:>7} {:>13} {:>11}",
        "n", "m", "arena.gates", "grounding", "depth", "arena/m", "depth/log n"
    );
    for w in [4usize, 8, 16, 32, 64] {
        // (w, 2)-layered graph: s → layer0 → layer1 → t, every s–t path has
        // exactly 3 edges and the query's 3-hop cone covers the whole input.
        let (g, s, t) = generators::layered(w, 2, 1.0, "E", 7);
        let n = g.num_nodes();
        let out = circuit::finite_rpq_circuit(&program, &g, s, t).unwrap();
        let st = circuit::stats(&out.circuit);
        let m = g.num_edges() as f64;
        pts_size.push((m, out.arena_gates as f64));
        pts_depth.push((n as f64, st.depth as f64));
        println!(
            "   {:>6} {:>8} {:>12} {:>12} {:>7} {:>13.3} {:>11.3}",
            n,
            g.num_edges(),
            out.arena_gates,
            out.grounding_size,
            st.depth,
            out.arena_gates as f64 / m,
            st.depth as f64 / (n as f64).log2()
        );
    }
    println!(
        "   fitted whole-query size exponent in m: {:.2} [paper: 1.0]   depth/log n spread: {:?}",
        fitted_exponent(&pts_size),
        normalized(&pts_depth, |x| x.log2())
            .iter()
            .map(|v| (v * 100.0).round() / 100.0)
            .collect::<Vec<_>>()
    );
}

/// Table 1, row "infinite regular": the two TC constructions.
fn table1_regular() {
    header(
        "T1-regular · Table 1 row 2 (infinite regular: E⁺ = TC)",
        "Bellman–Ford size O(mn), depth O(n log n) (Thm 5.6); squaring size O(n³ log n), depth Θ(log² n) (Thm 5.7, 3.4)",
    );
    println!(
        "   {:>5} {:>7} | {:>9} {:>6} {:>9} {:>12} | {:>9} {:>6} {:>14} {:>11}",
        "n",
        "m",
        "BF.gates",
        "BF.dep",
        "gates/mn",
        "dep/(n·logn)",
        "SQ.gates",
        "SQ.dep",
        "gates/(n³logn)",
        "dep/log²n"
    );
    let mut bf_depths = Vec::new();
    let mut sq_depths = Vec::new();
    for n in [8usize, 16, 32, 48] {
        let g = generators::gnm(n, 3 * n, &["E"], 11);
        let (m, nn) = (g.num_edges() as f64, n as f64);
        let (src, dst) = bench::best_long_pair(&g).expect("has edges");
        let bf = circuit::bellman_ford_graph(&g, src, dst);
        let bfs = circuit::stats(&bf);
        let sq = circuit::squaring_graph(&g).circuit_for(src, dst);
        let sqs = circuit::stats(&sq);
        bf_depths.push((nn, bfs.depth as f64));
        sq_depths.push((nn, sqs.depth as f64));
        println!(
            "   {:>5} {:>7} | {:>9} {:>6} {:>9.3} {:>12.3} | {:>9} {:>6} {:>14.4} {:>11.3}",
            n,
            g.num_edges(),
            bfs.num_gates,
            bfs.depth,
            bfs.num_gates as f64 / (m * nn),
            bfs.depth as f64 / (nn * nn.log2()),
            sqs.num_gates,
            sqs.depth,
            sqs.num_gates as f64 / (nn.powi(3) * nn.log2()),
            sqs.depth as f64 / nn.log2().powi(2),
        );
    }
    println!(
        "   fitted depth exponent: BF {:.2} [paper: ~1 (n log n)]   SQ {:.2} [paper: ~0 (polylog)]",
        fitted_exponent(&bf_depths),
        fitted_exponent(&sq_depths)
    );
}

/// Table 1, row "infinite CFG": Dyck-1 (Example 6.4).
fn table1_cfg() {
    header(
        "T1-cfg · Table 1 row 3 (infinite non-regular CFG: Dyck-1)",
        "grounded circuit: poly size, depth O(n² log n); UvG (Thm 6.2): depth Θ(log² n) since Dyck-1 has the polynomial fringe property",
    );
    println!(
        "   {:>7} {:>6} | {:>10} {:>7} | {:>10} {:>7} {:>11}",
        "pairs", "m", "GR.gates", "GR.dep", "UvG.gates", "UvG.dep", "dep/log²m"
    );
    for pairs in [2usize, 4, 6, 8] {
        let g = generators::dyck_path(pairs, 3);
        let (p, db, gp) = ground_on_graph(&programs::dyck1(), &g);
        let m = g.num_edges() as f64;
        let fact = graph_fact(&p, &db, &gp, 0, g.num_nodes() - 1).expect("balanced word");
        let gr = circuit::grounded_circuit(&gp, None).circuit_for(fact);
        let grs = circuit::stats(&gr);
        let uvg = circuit::uvg_circuit(&gp, None).circuit_for(fact);
        let us = circuit::stats(&uvg);
        assert_eq!(gr.polynomial(), uvg.polynomial(), "constructions agree");
        println!(
            "   {:>7} {:>6} | {:>10} {:>7} | {:>10} {:>7} {:>11.3}",
            pairs,
            g.num_edges(),
            grs.num_gates,
            grs.depth,
            us.num_gates,
            us.depth,
            us.depth as f64 / m.log2().powi(2),
        );
    }
}

/// Theorem 5.3: the Θ(log n) vs Θ(log² n) depth dichotomy for RPQs.
fn depth_dichotomy() {
    header(
        "E-depth-dichotomy · Theorem 5.3",
        "finite RPQ → depth Θ(log n); infinite RPQ → depth Θ(log² n); nothing in between",
    );
    let finite = datalog::parse_program(
        "P3(X,Y) :- P2(X,Z), E(Z,Y).\nP2(X,Y) :- P1(X,Z), E(Z,Y).\nP1(X,Y) :- E(X,Y).\n@target P3",
    )
    .unwrap();
    let tc = programs::transitive_closure();
    println!(
        "   {:>5} | {:>9} {:>12} | {:>9} {:>11} {:>12}",
        "n", "fin.depth", "fin/log n", "inf.depth", "inf/log n", "inf/log² n"
    );
    for n in [8usize, 16, 32, 64] {
        let g = generators::gnm(n, 3 * n, &["E"], 5);
        let (src, far) = bench::best_long_pair(&g).expect("has edges");
        let d3 = bench::target_at_distance(&g, src, 3).expect("3-hop target");
        let cf = compile_graph_fact(&finite, &g, src, d3, Strategy::Auto).unwrap();
        let ci = compile_graph_fact(&tc, &g, src, far, Strategy::Auto).unwrap();
        assert_eq!(cf.strategy, Strategy::MagicFiniteRpq);
        assert_eq!(ci.strategy, Strategy::ProductSquaring);
        let log = (n as f64).log2();
        println!(
            "   {:>5} | {:>9} {:>12.3} | {:>9} {:>11.3} {:>12.3}",
            n,
            cf.stats.depth,
            cf.stats.depth as f64 / log,
            ci.stats.depth,
            ci.stats.depth as f64 / log,
            ci.stats.depth as f64 / (log * log),
        );
    }
    println!("   reading: fin/log n flat, inf/log n grows, inf/log² n flat — the dichotomy.");
}

/// Theorems 5.4/5.10 + Prop 3.3: formula sizes.
fn formula_size() {
    header(
        "E-formula-size · Thms 5.4, 5.10, Prop 3.3",
        "finite language → polynomial-size formulas; infinite → super-polynomial (TC's best here is quasi-polynomial n^{O(log n)} from the log²-depth circuit)",
    );
    let finite = datalog::parse_program(
        "P3(X,Y) :- P2(X,Z), E(Z,Y).\nP2(X,Y) :- P1(X,Z), E(Z,Y).\nP1(X,Y) :- E(X,Y).\n@target P3",
    )
    .unwrap();
    let tc = programs::transitive_closure();
    println!(
        "   {:>5} | {:>14} {:>10} | {:>22} {:>12}",
        "n", "fin.formula", "fin.exp", "inf.formula (squaring)", "inf.exp"
    );
    let mut fin_pts = Vec::new();
    let mut inf_pts = Vec::new();
    let mut prev: Option<(f64, f64)> = None;
    for n in [8usize, 16, 32] {
        let g = generators::gnm(n, 3 * n, &["E"], 5);
        let (src, far) = bench::best_long_pair(&g).expect("has edges");
        let d3 = bench::target_at_distance(&g, src, 3).expect("3-hop target");
        let cf = compile_graph_fact(&finite, &g, src, d3, Strategy::Auto).unwrap();
        let ci = compile_graph_fact(&tc, &g, src, far, Strategy::ProductSquaring).unwrap();
        let ff = cf.stats.formula_size as f64;
        let fi = (ci.stats.formula_size.min(u128::from(u64::MAX)) as u64) as f64;
        fin_pts.push((n as f64, ff));
        inf_pts.push((n as f64, fi));
        // Point-to-point exponent (grows with n ⇒ super-polynomial).
        let (fe, ie) = match prev {
            Some((pf, pi)) => (
                (ff / pf).log2() / 2.0f64.log2().max(1.0),
                (fi / pi).log2() / 1.0,
            ),
            None => (f64::NAN, f64::NAN),
        };
        prev = Some((ff, fi));
        println!(
            "   {:>5} | {:>14} {:>10.2} | {:>22} {:>12.2}",
            n,
            fmt_u128(cf.stats.formula_size),
            fe,
            fmt_u128(ci.stats.formula_size),
            ie,
        );
    }
    println!(
        "   fitted exponents: finite {:.2} [poly, stays constant]   infinite {:.2} (and growing per step — super-polynomial signature)",
        fitted_exponent(&fin_pts),
        fitted_exponent(&inf_pts)
    );
}

/// §4: boundedness probes (Definition 4.1, Prop 5.5, Thm 4.3).
fn boundedness() {
    header(
        "E-bounded · §4 (Def 4.1, Example 4.2, Prop 5.5, Thm 4.3)",
        "bounded programs reach the fixpoint in O(1) iterations on every input and get O(log)-depth circuits; TC's iterations grow with the input",
    );
    let bounded = programs::bounded_example();
    let tc = programs::transitive_closure();
    println!(
        "   {:>5} | {:>14} {:>12} | {:>11}",
        "n", "bounded.iters", "bounded.depth", "tc.iters"
    );
    for n in [4usize, 8, 16, 32] {
        let g = generators::path(n, "E");
        // Seed A(v0) for the bounded program.
        let mut p = bounded.clone();
        let (mut db, _) = datalog::Database::from_graph(&mut p, &g);
        let a = p.preds.get("A").unwrap();
        let v0 = db.node_const(0).unwrap();
        db.insert(a, vec![v0]);
        let gp = datalog::ground(&p, &db).unwrap();
        let probe = datalog::provenance_eval(&gp, datalog::default_budget(&gp));
        let mo = circuit::grounded_circuit(&gp, Some(probe.iterations));
        let t = p.preds.get("T").unwrap();
        let f = gp
            .fact(t, &[v0, db.node_const(n).unwrap()])
            .expect("derivable");
        let depth = circuit::stats(&mo.circuit_for(f)).depth;

        let (_, _, gp_tc) = ground_on_graph(&tc, &g);
        let tc_probe = datalog::eval_all_ones::<Bool>(&gp_tc, datalog::default_budget(&gp_tc));
        println!(
            "   {:>5} | {:>14} {:>12} | {:>11}",
            n, probe.iterations, depth, tc_probe.iterations
        );
    }
    let verdict = provcirc::decide_boundedness(&tc, &Default::default());
    println!("   chain decision (Prop 5.5): TC → {:?}", verdict.verdict);
    let verdict2 = provcirc::decide_boundedness(&bounded, &Default::default());
    println!(
        "   expansion evidence (Thm 4.6): Example 4.2 → {:?}",
        verdict2.verdict
    );
}

/// §4: the Chom-class characterizations (Thm 4.6, Cor 4.7).
fn chom() {
    header(
        "E-chom · Thm 4.6 + Cor 4.7",
        "over absorptive ⊗-idempotent semirings, boundedness ⇔ Boolean boundedness; expansions absorb via homomorphisms from depth N on",
    );
    for (name, program) in [
        ("TC", programs::transitive_closure()),
        ("Example 4.2", programs::bounded_example()),
        ("monadic reachability", programs::monadic_reachability()),
        ("three hops (UCQ)", programs::three_hops()),
    ] {
        let report = provcirc::decide_boundedness(&program, &Default::default());
        println!("   {name:<22} → {:?}", report.verdict);
    }
    // Cor 4.7: iterations agree across B, Fuzzy, Bottleneck.
    let tc = programs::transitive_closure();
    let mut p = tc.clone();
    let dbs: Vec<datalog::Database> = [6usize, 10]
        .iter()
        .map(|&n| {
            let g = generators::gnm(n, 3 * n, &["E"], n as u64);
            datalog::Database::from_graph(&mut p, &g).0
        })
        .collect();
    let rows = provcirc::cross_semiring_iterations(&p, &dbs).unwrap();
    println!("   Cor 4.7 iterations (Bool, Fuzzy, Bottleneck) per input: {rows:?}  [all equal]");
}

/// §6.1: the polynomial fringe property and Theorem 6.2.
fn fringe() {
    header(
        "E-fringe · §6.1 (Def 6.1, Thm 6.2, Cor 6.3, Example 6.4)",
        "linear programs and Dyck-1 have polynomial fringe; UvG circuits reach depth O(log² m)",
    );
    println!(
        "   {:>22} {:>5} {:>11} {:>9} {:>11}",
        "program", "m", "max fringe", "UvG.dep", "dep/log² m"
    );
    for n in [3usize, 5, 7] {
        let g = generators::path(n, "E");
        let (p, db, gp) = ground_on_graph(&programs::transitive_closure(), &g);
        let f = graph_fact(&p, &db, &gp, 0, n).unwrap();
        let fringe = datalog::prooftree::max_fringe(&gp, f, 100_000).unwrap();
        let uvg = circuit::uvg_circuit(&gp, None).circuit_for(f);
        let st = circuit::stats(&uvg);
        let m = g.num_edges() as f64;
        println!(
            "   {:>22} {:>5} {:>11} {:>9} {:>11.3}",
            format!("TC path n={n}"),
            g.num_edges(),
            fringe,
            st.depth,
            st.depth as f64 / m.log2().powi(2).max(1.0)
        );
    }
    for pairs in [2usize, 3, 4] {
        let g = generators::dyck_path(pairs, 9);
        let (p, db, gp) = ground_on_graph(&programs::dyck1(), &g);
        let f = graph_fact(&p, &db, &gp, 0, g.num_nodes() - 1).unwrap();
        let fringe = datalog::prooftree::max_fringe(&gp, f, 100_000).unwrap();
        let uvg = circuit::uvg_circuit(&gp, None).circuit_for(f);
        let st = circuit::stats(&uvg);
        let m = g.num_edges() as f64;
        println!(
            "   {:>22} {:>5} {:>11} {:>9} {:>11.3}",
            format!("Dyck-1 pairs={pairs}"),
            g.num_edges(),
            fringe,
            st.depth,
            st.depth as f64 / m.log2().powi(2).max(1.0)
        );
    }
    println!(
        "   reading: fringe stays linear in m (polynomial fringe), depth/log² m stays bounded."
    );
}

/// Theorems 5.9 / 5.11: the lower-bound reductions, executed.
fn reductions() {
    header(
        "E-reduction · Thms 5.9 & 5.11",
        "expanding a layered TC instance and rewiring the program's circuit recovers the TC provenance at equal depth — transferring the Ω(log² n) bound of Thm 3.4",
    );
    // Regular reduction: a b* c.
    let re = grammar::Regex::parse("a b* c").unwrap();
    let mut alphabet = grammar::Alphabet::new();
    let dfa = grammar::Dfa::compile(&re, &mut alphabet);
    let pumping = grammar::RegularPumping::from_dfa(&dfa).unwrap();
    let (g, s, t) = generators::layered(3, 3, 0.7, "E", 1);
    let inst = circuit::tc_to_rpq(&g, s, t, &pumping, &|t| alphabet.name(t).to_owned());
    let mut eg = inst.graph.clone();
    let dfa2 = grammar::Dfa::compile(&re, &mut eg.alphabet);
    let big = circuit::rpq_circuit(&eg, &dfa2, inst.src, inst.dst, TcStrategy::RepeatedSquaring);
    let rewired = inst.rewire(&big);
    let (p, db, gp) = ground_on_graph(&programs::transitive_closure(), &g);
    let expect = graph_fact(&p, &db, &gp, s as usize, t as usize)
        .map(|f| datalog::provenance_eval(&gp, datalog::default_budget(&gp)).values[f].clone())
        .unwrap_or_default();
    println!(
        "   Thm 5.9 (a b* c): expanded m={} (from {}), rewired == TC provenance: {}",
        inst.graph.num_edges(),
        g.num_edges(),
        rewired.polynomial() == expect
    );
    println!(
        "     depth: program circuit {} → rewired {} (depth-preserving)",
        circuit::stats(&big).depth,
        circuit::stats(&rewired).depth
    );

    // CFG reduction: Dyck-1.
    let cnf = grammar::Cnf::from_cfg(&grammar::Cfg::dyck1());
    let analysis = grammar::CfgAnalysis::new(&cnf);
    let cpump = grammar::CfgPumping::from_cnf(&cnf, &analysis).unwrap();
    let names = cnf.alphabet.clone();
    let inst2 = circuit::tc_to_cfg(&g, s, t, 4, &cpump, &|t| names.name(t).to_owned()).unwrap();
    let (p2, db2, gp2) = ground_on_graph(&programs::dyck1(), &inst2.graph);
    let fact2 = graph_fact(&p2, &db2, &gp2, inst2.src as usize, inst2.dst as usize);
    match fact2 {
        Some(f) => {
            let big2 = circuit::grounded_circuit(&gp2, None).circuit_for(f);
            let rewired2 = inst2.rewire(&big2);
            println!(
                "   Thm 5.11 (Dyck-1): expanded m={} — rewired == TC provenance: {}",
                inst2.graph.num_edges(),
                rewired2.polynomial() == expect
            );
        }
        None => println!(
            "   Thm 5.11 (Dyck-1): expanded fact underivable (TC provenance empty: {})",
            expect.is_empty()
        ),
    }
}

/// Naive vs semi-naive fixpoint evaluation — the perf-trajectory
/// experiment behind `BENCH_seminaive.json`.
fn seminaive() {
    header(
        "E-seminaive · naive vs semi-naive evaluation",
        "semi-naive re-fires each grounded rule O(#changes) times instead of O(rounds × rules): ≥2× on TC over gnm graphs",
    );
    let tc = programs::transitive_closure();
    let unit = UnitWeights::new(Tropical::new(1));
    let mut rows: Vec<String> = Vec::new();
    let mut checked_speedup = None;
    println!(
        "   {:>5} {:>6} {:>9} {:>10} {:>10} | {:>10} {:>10} {:>8} | {:>7} {:>8}",
        "n",
        "m",
        "facts",
        "rules",
        "ground_ms",
        "naive_ms",
        "semi_ms",
        "speedup",
        "n.iters",
        "s.rounds"
    );
    for (n, m) in [(50usize, 200usize), (100, 400), (200, 800)] {
        let g = generators::gnm(n, m, &["E"], 13);
        let (ground_ms, (_, _, gp)) = bench::time_best_ms(1, || ground_on_graph(&tc, &g));
        let budget = datalog::default_budget(&gp);
        let (naive, nout) =
            bench::time_stats_ms(5, || datalog::naive_eval::<Tropical, _>(&gp, &unit, budget));
        let (semi, sout) = bench::time_stats_ms(5, || {
            datalog::semi_naive_eval::<Tropical, _>(&gp, &unit, budget)
        });
        let (naive_ms, semi_ms) = (naive.best_ms, semi.best_ms);
        assert!(nout.converged && sout.converged, "both must converge");
        assert_eq!(nout.values, sout.values, "strategies must agree");
        let speedup = naive_ms / semi_ms;
        if (n, m) == (200, 800) {
            checked_speedup = Some(speedup);
        }
        println!(
            "   {:>5} {:>6} {:>9} {:>10} {:>10.1} | {:>10.2} {:>10.2} {:>7.2}x | {:>7} {:>8}",
            n,
            m,
            gp.num_idb_facts(),
            gp.rules.len(),
            ground_ms,
            naive_ms,
            semi_ms,
            speedup,
            nout.iterations,
            sout.iterations,
        );
        rows.push(format!(
            "{{\"n\": {n}, \"m\": {m}, \"idb_facts\": {}, \"grounded_rules\": {}, \
             \"ground_ms\": {ground_ms:.3}, \"naive_ms\": {naive_ms:.3}, \
             \"naive_mean_ms\": {:.3}, \"seminaive_ms\": {semi_ms:.3}, \
             \"seminaive_mean_ms\": {:.3}, \"samples\": {}, \
             \"speedup\": {speedup:.3}, \
             \"naive_iters\": {}, \"seminaive_rounds\": {}}}",
            gp.num_idb_facts(),
            gp.rules.len(),
            naive.mean_ms,
            semi.mean_ms,
            naive.samples,
            nout.iterations,
            sout.iterations,
        ));
    }
    // Per-stage wall-clock of the same workload through the full Engine
    // pipeline on the largest row, recorded by the telemetry layer — the
    // committed trajectory shows where the milliseconds go, not just the
    // eval total.
    let engine = provcirc::Engine::builder()
        .program_text("T(X,Y) :- E(X,Y).\nT(X,Y) :- T(X,Z), E(Z,Y).")
        .graph(&generators::gnm(200, 800, &["E"], 13))
        .telemetry(true)
        .build()
        .expect("engine builds");
    engine.classification();
    let (bs, bt) = bench::best_long_pair(engine.graph().expect("graph session")).expect("edges");
    engine
        .node_query(bs, bt)
        .and_then(|q| q.eval::<Tropical, _>(&unit))
        .expect("eval converges");
    let report = engine.metrics_report();
    let stage_ms: Vec<String> = report
        .stages
        .iter()
        .map(|s| format!("\"{}\": {:.3}", s.stage.name(), s.total_nanos as f64 / 1e6))
        .collect();
    let json = format!(
        "{{\n  \"experiment\": \"naive_vs_seminaive\",\n  \"program\": \"transitive_closure\",\n  \
         \"semiring\": \"tropical, unit weights\",\n  \"timer\": \"best of 5\",\n  \
         \"stage_ms\": {{{}}},\n  \"rows\": [\n    {}\n  ]\n}}\n",
        stage_ms.join(", "),
        rows.join(",\n    ")
    );
    match std::fs::write("BENCH_seminaive.json", &json) {
        Ok(()) => println!("   trajectory written to BENCH_seminaive.json"),
        Err(e) => println!("   could not write BENCH_seminaive.json: {e}"),
    }
    let speedup = checked_speedup.expect("gnm(200,800) row ran");
    println!("   reading: gnm(200,800) speedup {speedup:.2}x [target: ≥ 2x]");
    // Regression guard, deliberately below the 2x target: shared CI
    // runners time noisily, and a flaky smoke job is worse than a slightly
    // loose tripwire (the committed trajectory records the real number).
    assert!(
        speedup >= 1.5,
        "semi-naive speedup collapsed on gnm(200,800): {speedup:.2}x"
    );
}

/// Streaming fused ground+eval vs materialize-then-eval, plus the
/// demand-driven (magic-set) cone size — the perf-trajectory experiment
/// behind `BENCH_grounding.json` (ISSUE 9).
fn grounding() {
    header(
        "E-grounding · fused ground+eval vs materialize-then-eval",
        "streaming grounded rules straight into the ⊕-worklist skips the grounded-rule vector: the end-to-end win on TC over gnm grows with instance size toward 2× as the rule vector hits the allocator wall; a magic-set point query grounds <10% of the full program",
    );
    let tc = programs::transitive_closure();
    let unit = UnitWeights::new(Tropical::new(1));
    let mut rows: Vec<String> = Vec::new();
    let mut gate_speedup = None;
    let mut headline = None;
    let mut large_speedup = None;
    println!(
        "   {:>5} {:>6} {:>9} {:>10} | {:>10} {:>10} {:>8} | {:>10} {:>9} | {:>11} {:>8}",
        "n",
        "m",
        "facts",
        "rules",
        "mat_ms",
        "fused_ms",
        "speedup",
        "peak_rules",
        "csr_KiB",
        "magic_rules",
        "cone%"
    );
    // The large row is where the materialized pipeline's rule vector
    // (15.4M rules, ~1.5 GiB boxed) hits the allocator wall and the
    // streaming win peaks (1.6–2.1× across runs on the noisy 1-core
    // bench container); it adds ~2 min, so it is opt-in
    // (`GROUNDING_LARGE=1`, used to produce the committed trajectory)
    // and the CI smoke gates on the mid-size rows only.
    let mut sizes: Vec<(usize, usize, usize)> =
        vec![(200, 800, 3), (500, 2_000, 3), (1_000, 4_000, 3)];
    if std::env::var("GROUNDING_LARGE").is_ok() {
        sizes.push((2_000, 8_000, 2));
    } else {
        println!("   (gnm(2000,8000) row skipped — set GROUNDING_LARGE=1 to run it)");
    }
    for (n, m, runs) in sizes {
        let g = generators::gnm(n, m, &["E"], 13);
        let mut p = tc.clone();
        let (db, _) = datalog::Database::from_graph(&mut p, &g);

        // Baseline: materialize the grounded-rule vector, then run the
        // semi-naive fixpoint over it — the pre-fusion pipeline, timed
        // end-to-end (grounding included, as a query session pays it).
        let (mat, (gp, mout)) = bench::time_stats_ms(runs, || {
            let gp = datalog::ground(&p, &db).expect("grounding");
            let out =
                datalog::semi_naive_eval::<Tropical, _>(&gp, &unit, datalog::default_budget(&gp));
            (gp, out)
        });
        // Fused: discovery and evaluation share one worklist; no rule
        // vector ever exists for this pure fixpoint query.
        let (fus, fout) = bench::time_stats_ms(runs, || {
            datalog::fused_eval::<Tropical, _>(&p, &db, &unit, None).expect("fused eval")
        });
        assert!(mout.converged && fout.converged, "both must converge");
        assert_eq!(
            fout.gp.idb_facts, gp.idb_facts,
            "fused fact order must be bit-identical"
        );
        assert_eq!(fout.values, mout.values, "pipelines must agree");
        let speedup = mat.best_ms / fus.best_ms;
        assert_eq!(
            fout.retained, None,
            "pure fixpoint queries must not retain grounded rules"
        );

        // Retention mode: what a session that *wants* the rules for later
        // (provenance, incremental maintenance) pays — the CSR store vs
        // the boxed `Vec<GroundedRule>` it replaces.
        let retained =
            datalog::fused_eval_retaining::<Tropical, _>(&p, &db, &unit, None, &telemetry::NOOP)
                .expect("retaining eval");
        let csr = retained.retained.expect("retention requested");
        let csr_bytes = csr.heap_bytes();
        let boxed_bytes = csr.boxed_bytes_equivalent();

        // Demand-driven: one bound-source point query grounds only the
        // magic cone — monadic facts from the source, not all n² pairs.
        let t = p.preds.get("T").expect("TC target");
        let goal = [
            db.node_const(0).expect("v0"),
            db.node_const(n - 1).expect("v(n-1)"),
        ];
        let magic = datalog::magic_point_eval::<Tropical, _>(
            &p,
            &db,
            t,
            &goal,
            &unit,
            None,
            &telemetry::NOOP,
        )
        .expect("eligible TC goal")
        .expect("left-linear chain");
        let cone = magic.grounded_rules as f64 / gp.rules.len() as f64;

        if (n, m) == (500, 2_000) {
            gate_speedup = Some(speedup);
        }
        if (n, m) == (1_000, 4_000) {
            headline = Some((speedup, cone));
        }
        if (n, m) == (2_000, 8_000) {
            large_speedup = Some(speedup);
        }
        println!(
            "   {:>5} {:>6} {:>9} {:>10} | {:>10.1} {:>10.1} {:>7.2}x | {:>10} {:>9.1} | {:>11} {:>7.2}%",
            n,
            m,
            gp.num_idb_facts(),
            gp.rules.len(),
            mat.best_ms,
            fus.best_ms,
            speedup,
            gp.rules.len(),
            csr_bytes as f64 / 1024.0,
            magic.grounded_rules,
            cone * 100.0,
        );
        rows.push(format!(
            "{{\"n\": {n}, \"m\": {m}, \"idb_facts\": {}, \
             \"materialize_eval_ms\": {:.3}, \"materialize_eval_mean_ms\": {:.3}, \
             \"fused_ms\": {:.3}, \"fused_mean_ms\": {:.3}, \"samples\": {}, \
             \"speedup\": {speedup:.3}, \
             \"peak_grounded_rules_materialized\": {}, \
             \"peak_grounded_rules_fused\": {}, \
             \"streamed_rules\": {}, \"fused_rounds\": {}, \
             \"csr_retained_bytes\": {csr_bytes}, \"boxed_equivalent_bytes\": {boxed_bytes}, \
             \"magic_cone_rules\": {}, \"magic_cone_fraction\": {cone:.5}}}",
            gp.num_idb_facts(),
            mat.best_ms,
            mat.mean_ms,
            fus.best_ms,
            fus.mean_ms,
            mat.samples,
            gp.rules.len(),
            fout.peak_buffered,
            fout.streamed_rules,
            fout.iterations,
            magic.grounded_rules,
        ));
    }
    let json = format!(
        "{{\n  \"experiment\": \"fused_grounding\",\n  \"program\": \"transitive_closure\",\n  \
         \"semiring\": \"tropical, unit weights\",\n  \"timer\": \"best of 3 (2 for gnm(2000,8000)), end-to-end (ground + eval)\",\n  \
         \"rows\": [\n    {}\n  ]\n}}\n",
        rows.join(",\n    ")
    );
    match std::fs::write("BENCH_grounding.json", &json) {
        Ok(()) => println!("   trajectory written to BENCH_grounding.json"),
        Err(e) => println!("   could not write BENCH_grounding.json: {e}"),
    }
    let (speedup, cone) = headline.expect("gnm(1000,4000) row ran");
    println!(
        "   reading: gnm(1000,4000) fused speedup {speedup:.2}x, magic cone {:.2}% [target: < 10%]",
        cone * 100.0
    );
    if let Some(large) = large_speedup {
        println!("   reading: gnm(2000,8000) fused speedup {large:.2}x [fused win peaks at the rule-vector memory wall; 1.6–2.1x across runs]");
    }
    // Regression guards, deliberately loose for noisy shared CI runners:
    // the committed trajectory records the real numbers.
    let gate = gate_speedup.expect("gnm(500,2000) row ran");
    assert!(
        gate >= 1.0,
        "fused ground+eval slower than materialize-then-eval on gnm(500,2000): {gate:.2}x"
    );
    assert!(
        cone < 0.10,
        "magic cone grew to {:.2}% of the full grounding",
        cone * 100.0
    );
}

/// Parallel sharded evaluation: thread-scaling of the fixpoint pipeline —
/// the perf-trajectory experiment behind `BENCH_parallel.json`.
fn parallel() {
    header(
        "E-parallel · owner-sharded parallel evaluation",
        "derived facts are partitioned by head-fact hash: each worker owns a disjoint ⊕-accumulator slice (no merge step), cross-owner contributions flow through deterministic mailboxes, and idle workers steal straggler chunks; values stay bit-identical",
    );
    let cores = std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1);
    println!("   available cores: {cores}");
    let tc = programs::transitive_closure();
    let unit = UnitWeights::new(Tropical::new(1));
    let thread_counts = [1usize, 2, 4, 8];
    let mut rows: Vec<String> = Vec::new();
    let mut headline: Option<(f64, f64)> = None; // (naive, semi) speedups at 4 threads, largest row
    let mut agree = true;
    println!(
        "   {:>5} {:>6} {:>9} {:>10} {:>10} {:>10} | {:>3} {:>10} {:>8} {:>10} {:>8}",
        "n",
        "m",
        "facts",
        "rules",
        "grnd1_ms",
        "grnd4_ms",
        "t",
        "naive_ms",
        "n.spd",
        "semi_ms",
        "s.spd"
    );
    for (n, m) in [(500usize, 2000usize), (1000, 4000), (2000, 8000)] {
        let g = generators::gnm(n, m, &["E"], 13);
        let mut p = tc.clone();
        let (db, _) = datalog::Database::from_graph(&mut p, &g);
        let (ground1_ms, gp) = bench::time_best_ms(1, || datalog::ground(&p, &db).unwrap());
        let (ground4_ms, gp4) = bench::time_best_ms(1, || datalog::par_ground(&p, &db, 4).unwrap());
        // Determinism gate: the sharded grounding must be bit-identical.
        assert_eq!(
            gp.idb_facts, gp4.idb_facts,
            "parallel grounding FactId drift"
        );
        assert_eq!(gp.rules, gp4.rules, "parallel grounding rule drift");
        drop(gp4);
        let budget = datalog::default_budget(&gp);
        let mut base = (0.0f64, 0.0f64);
        let mut reference: Option<(Vec<Tropical>, Vec<Tropical>)> = None;
        for &t in &thread_counts {
            let (naive, nout) = bench::time_stats_ms(3, || {
                datalog::par_naive_eval::<Tropical, _>(&gp, &unit, budget, t)
            });
            let (semi, sout) = bench::time_stats_ms(3, || {
                datalog::par_semi_naive_eval::<Tropical, _>(&gp, &unit, budget, t)
            });
            let (naive_ms, semi_ms) = (naive.best_ms, semi.best_ms);
            assert!(nout.converged && sout.converged, "both must converge");
            match &reference {
                None => reference = Some((nout.values, sout.values)),
                Some((rn, rs)) => {
                    agree &= *rn == nout.values && *rs == sout.values;
                }
            }
            if t == 1 {
                base = (naive_ms, semi_ms);
            }
            let naive_speedup = base.0 / naive_ms;
            let semi_speedup = base.1 / semi_ms;
            if t == 4 && (n, m) == (2000, 8000) {
                headline = Some((naive_speedup, semi_speedup));
            }
            println!(
                "   {:>5} {:>6} {:>9} {:>10} {:>10.1} {:>10.1} | {:>3} {:>10.2} {:>7.2}x {:>10.2} {:>7.2}x",
                n,
                m,
                gp.num_idb_facts(),
                gp.rules.len(),
                ground1_ms,
                ground4_ms,
                t,
                naive_ms,
                naive_speedup,
                semi_ms,
                semi_speedup,
            );
            rows.push(format!(
                "{{\"n\": {n}, \"m\": {m}, \"idb_facts\": {}, \"grounded_rules\": {}, \
                 \"ground_seq_ms\": {ground1_ms:.3}, \"ground_par4_ms\": {ground4_ms:.3}, \
                 \"threads\": {t}, \"naive_ms\": {naive_ms:.3}, \"naive_mean_ms\": {:.3}, \
                 \"naive_speedup\": {naive_speedup:.3}, \
                 \"semi_ms\": {semi_ms:.3}, \"semi_mean_ms\": {:.3}, \
                 \"semi_speedup\": {semi_speedup:.3}, \"samples\": {}}}",
                gp.num_idb_facts(),
                gp.rules.len(),
                naive.mean_ms,
                semi.mean_ms,
                naive.samples,
            ));
        }
    }
    assert!(
        agree,
        "parallel evaluation drifted from the 1-thread values"
    );
    // Per-worker shard statistics of a 4-thread Engine run on the largest
    // instance, recorded by the telemetry layer — the committed trajectory
    // shows how the parallel stages actually divided their work.
    let engine = provcirc::Engine::builder()
        .program(tc.clone())
        .graph(&generators::gnm(2000, 8000, &["E"], 13))
        .parallelism(4)
        .telemetry(true)
        .build()
        .expect("engine builds");
    let (bs, bt) = bench::best_long_pair(engine.graph().expect("graph session")).expect("edges");
    engine
        .node_query(bs, bt)
        .and_then(|q| q.eval::<Tropical, _>(&unit))
        .expect("eval converges");
    let shard_rows: Vec<String> = engine
        .metrics_report()
        .shards
        .iter()
        .map(|((stage, worker), a)| {
            format!(
                "{{\"stage\": \"{}\", \"worker\": {worker}, \"calls\": {}, \
                 \"busy_ms\": {:.3}, \"tasks\": {}, \"produced\": {}, \
                 \"steals\": {}, \"mailbox\": {}}}",
                stage.name(),
                a.calls,
                a.busy_nanos as f64 / 1e6,
                a.tasks,
                a.produced,
                a.steals,
                a.mailbox,
            )
        })
        .collect();
    let json = format!(
        "{{\n  \"experiment\": \"parallel_eval\",\n  \"program\": \"transitive_closure\",\n  \
         \"semiring\": \"tropical, unit weights\",\n  \
         \"timer\": \"eval best of 3; grounding single run\",\n  \
         \"cores\": {cores},\n  \"agree\": true,\n  \"shards_4threads\": [\n    {}\n  ],\n  \
         \"rows\": [\n    {}\n  ]\n}}\n",
        shard_rows.join(",\n    "),
        rows.join(",\n    ")
    );
    match std::fs::write("BENCH_parallel.json", &json) {
        Ok(()) => println!("   trajectory written to BENCH_parallel.json"),
        Err(e) => println!("   could not write BENCH_parallel.json: {e}"),
    }
    let (naive4, semi4) = headline.expect("gnm(2000,8000) × 4 threads row ran");
    let best = naive4.max(semi4);
    println!(
        "   reading: gnm(2000,8000) 4-thread speedup — naive {naive4:.2}x, semi {semi4:.2}x \
         [target on ≥4 cores: ≥ 2.5x]"
    );
    // Speedup gate. Wall-clock parallel speedup needs physical cores: on a
    // ≥4-core host the owner-sharded scheduler must deliver the ROADMAP
    // target — ≥2.5x at 4 threads (no merge step left to amortize, stealing
    // keeps the rounds balanced). On smaller hosts only guard against
    // catastrophic overhead: the mailbox design materializes every
    // cross-owner `(head, contribution)` pair instead of ⊕-applying in
    // place, so 4 threads time-sliced onto 1 core legitimately pay ~2.5x —
    // the gate trips below 3x.
    let gate = if cores >= 4 { 2.5 } else { 1.0 / 3.0 };
    assert!(
        best >= gate,
        "parallel evaluation speedup collapsed on gnm(2000,8000): {best:.2}x (gate {gate}, cores {cores})"
    );
}

/// Engine-as-a-service: serving throughput of the session server — the
/// perf-trajectory experiment behind `BENCH_serving.json`.
///
/// One resident session holds the frozen grounding; clients hammer it with
/// transitive-closure queries over the wire. Two effects are measured:
/// worker-pool scaling (more connections answered concurrently, each
/// reader on its own `Arc<EngineSnapshot>`) and batch amortization (a
/// `BATCH` of same-semiring queries pays for ONE fixpoint instead of one
/// per query).
fn serving() {
    use server::client::Client;
    use server::{Server, ServerConfig};
    use std::collections::BTreeSet;
    use std::time::Instant;

    header(
        "E-serving · engine-as-a-service throughput",
        "ground once, serve forever: snapshot readers share one frozen grounding; BATCH amortizes one fixpoint across N same-semiring queries",
    );
    let cores = std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1);
    println!("   available cores: {cores}");

    // Workload: transitive closure on gnm(60,240); goals are edge
    // endpoints, so every query is derivable and actually evaluates.
    let g = generators::gnm(60, 240, &["E"], 13);
    let fact_lines: Vec<String> = g
        .edges()
        .iter()
        .map(|&(u, v, _)| format!("E n{u} n{v}"))
        .collect::<BTreeSet<_>>()
        .into_iter()
        .collect();
    let goals: Vec<(u32, u32)> = {
        let mut seen = BTreeSet::new();
        g.edges()
            .iter()
            .filter(|&&(u, v, _)| seen.insert((u, v)))
            .map(|&(u, v, _)| (u, v))
            .take(32)
            .collect()
    };
    let query_line =
        |&(u, v): &(u32, u32)| format!("QUERY T n{u} n{v} SEMIRING tropical VALUATION unit:1");
    const SINGLES_PER_CLIENT: usize = 32;
    const BATCHES_PER_CLIENT: usize = 2;
    let batch_payload: Vec<String> = goals.iter().map(query_line).collect();
    let batch_size = batch_payload.len();

    let worker_counts = [1usize, 4, 8];
    let mut rows: Vec<String> = Vec::new();
    let mut single_qps_by_workers: Vec<(usize, f64)> = Vec::new();
    let mut amortization_at_1 = 0.0f64;
    println!(
        "   {:>7} {:>7} | {:>8} {:>10} {:>10} | {:>8} {:>10} {:>10} | {:>6}",
        "workers",
        "clients",
        "queries",
        "single_s",
        "single_qps",
        "queries",
        "batch_s",
        "batch_qps",
        "amort"
    );
    for &workers in &worker_counts {
        let handle = Server::bind(ServerConfig::default().addr("127.0.0.1:0").workers(workers))
            .expect("server binds");
        let addr = handle.addr();

        // One admin connection sets up the shared session: program + facts
        // ground exactly once; every client attaches to the same snapshot.
        let mut admin = Client::connect(addr).expect("admin connects");
        let open = admin.roundtrip("SESSION OPEN").expect("session opens");
        let sid: u64 = open
            .strip_prefix("OK SESSION ")
            .expect("OK SESSION reply")
            .parse()
            .expect("session id");
        let program = ["T(X,Y) :- E(X,Y).", "T(X,Y) :- T(X,Z), E(Z,Y)."];
        assert!(
            admin
                .send_block("LOAD PROGRAM", &program)
                .expect("program loads")
                .is_ok(),
            "LOAD PROGRAM accepted"
        );
        let fact_refs: Vec<&str> = fact_lines.iter().map(String::as_str).collect();
        assert!(
            admin
                .send_block("LOAD FACTS", &fact_refs)
                .expect("facts load")
                .is_ok(),
            "LOAD FACTS accepted"
        );
        // Warm the snapshot (grounding + classification) outside the timer.
        let warm = admin.roundtrip(&query_line(&goals[0])).expect("warm query");
        assert!(warm.starts_with("OK VALUE"), "warm query answers: {warm}");
        // Release the admin's worker before timing: a thread-per-connection
        // pool dedicates one worker per live connection, and at 1 worker an
        // idle admin would starve every benchmark client (the session
        // itself stays resident in the registry).
        let _ = admin.roundtrip("QUIT");
        drop(admin);

        let clients = workers;
        let attach = format!("SESSION ATTACH {sid}");

        // Mode 1: one-at-a-time queries, each paying its own fixpoint.
        let single_total = clients * SINGLES_PER_CLIENT;
        let start = Instant::now();
        std::thread::scope(|scope| {
            for c in 0..clients {
                let attach = &attach;
                let goals = &goals;
                let query_line = &query_line;
                scope.spawn(move || {
                    let mut client = Client::connect(addr).expect("client connects");
                    assert!(
                        client
                            .roundtrip(attach)
                            .expect("attach")
                            .starts_with("OK SESSION"),
                        "client attaches"
                    );
                    for q in 0..SINGLES_PER_CLIENT {
                        let goal = &goals[(c + q) % goals.len()];
                        let reply = client.roundtrip(&query_line(goal)).expect("query");
                        assert!(reply.starts_with("OK VALUE"), "query answers: {reply}");
                    }
                });
            }
        });
        let single_s = start.elapsed().as_secs_f64();
        let single_qps = single_total as f64 / single_s;

        // Mode 2: the same queries in BATCH frames — one fixpoint per
        // (semiring, valuation) group per frame.
        let batch_total = clients * BATCHES_PER_CLIENT * batch_size;
        let start = Instant::now();
        std::thread::scope(|scope| {
            for _ in 0..clients {
                let attach = &attach;
                let batch_payload = &batch_payload;
                scope.spawn(move || {
                    let mut client = Client::connect(addr).expect("client connects");
                    assert!(
                        client
                            .roundtrip(attach)
                            .expect("attach")
                            .starts_with("OK SESSION"),
                        "client attaches"
                    );
                    let payload: Vec<&str> = batch_payload.iter().map(String::as_str).collect();
                    for _ in 0..BATCHES_PER_CLIENT {
                        let reply = client.send_block("BATCH", &payload).expect("batch");
                        assert!(reply.is_ok(), "batch answers: {}", reply.status);
                        assert_eq!(reply.body.len(), batch_size, "one row per item");
                        for row in &reply.body {
                            assert!(
                                row.split_ascii_whitespace().nth(1) == Some("OK"),
                                "batch row ok: {row}"
                            );
                        }
                    }
                });
            }
        });
        let batch_s = start.elapsed().as_secs_f64();
        let batch_qps = batch_total as f64 / batch_s;
        let amortization = batch_qps / single_qps;

        handle.shutdown();
        handle.wait().expect("server drains");

        if workers == 1 {
            amortization_at_1 = amortization;
        }
        single_qps_by_workers.push((workers, single_qps));
        println!(
            "   {workers:>7} {clients:>7} | {single_total:>8} {single_s:>10.3} {single_qps:>10.1} | {batch_total:>8} {batch_s:>10.3} {batch_qps:>10.1} | {amortization:>5.1}x"
        );
        rows.push(format!(
            "{{\"workers\": {workers}, \"clients\": {clients},              \"single_queries\": {single_total}, \"single_s\": {single_s:.4},              \"single_qps\": {single_qps:.1}, \"batch_queries\": {batch_total},              \"batch_s\": {batch_s:.4}, \"batch_qps\": {batch_qps:.1},              \"amortization\": {amortization:.2}}}"
        ));
    }

    let json = format!(
        "{{\n  \"experiment\": \"serving\",\n  \"program\": \"transitive_closure\",\n           \"semiring\": \"tropical, unit weights\",\n           \"workload\": \"gnm(60,240); {SINGLES_PER_CLIENT} single queries/client;          {BATCHES_PER_CLIENT} batches of {batch_size}/client; clients = workers\",\n           \"cores\": {cores},\n  \"batch_size\": {batch_size},\n  \"rows\": [\n    {}\n  ]\n}}\n",
        rows.join(",\n    ")
    );
    match std::fs::write("BENCH_serving.json", &json) {
        Ok(()) => println!("   trajectory written to BENCH_serving.json"),
        Err(e) => println!("   could not write BENCH_serving.json: {e}"),
    }

    println!(
        "   reading: batch amortization {amortization_at_1:.1}x at 1 worker          [one fixpoint per batch group vs one per query]"
    );
    // Amortization is algorithmic (fixpoints skipped, not cores added), so
    // it must show on any host. Worker scaling needs physical cores: gate
    // only on ≥4, and loosely — this is a smoke tripwire, the committed
    // trajectory records the real curve.
    assert!(
        amortization_at_1 >= 1.2,
        "batch amortization collapsed: {amortization_at_1:.2}x at 1 worker"
    );
    if cores >= 4 {
        let qps1 = single_qps_by_workers[0].1;
        let qps4 = single_qps_by_workers[1].1;
        assert!(
            qps4 >= qps1,
            "4 workers slower than 1 on {cores} cores: {qps4:.1} vs {qps1:.1} qps"
        );
    }
}

/// Incremental maintenance: cost-per-update of insert/retract against the
/// resident engine vs re-grounding + re-evaluating from scratch — the
/// perf-trajectory experiment behind `BENCH_incremental.json`.
///
/// Each update is *complete*: the grounding is maintained in place
/// (`Engine::insert_fact` / `retract_fact`) **and** the tropical fixpoint
/// is repaired (`MaintainedFixpoint`), so the per-update cost is what a
/// serving write actually pays. The baseline is what a non-incremental
/// engine pays per update: one full grounding plus one full semi-naive
/// fixpoint.
fn incremental() {
    use incremental::MaintainedFixpoint;
    use std::time::Instant;

    header(
        "E-incremental · insert/retract maintenance vs re-grounding",
        "a single-fact delta touches O(|cone|) rules, not O(|grounding|): maintained updates beat full recompute by orders of magnitude on TC",
    );
    let cores = std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1);
    println!("   available cores: {cores}");
    let tc = programs::transitive_closure();
    let unit = UnitWeights::new(Tropical::new(1));
    const UPDATES: usize = 24;
    const BATCH: usize = 8;
    let mut rows: Vec<String> = Vec::new();
    let mut smoke_500: Option<f64> = None; // batched-insert speedup on the small row
    let mut headline_1k: Option<(f64, f64)> = None; // (full_ms, single-insert per-update)
    println!(
        "   {:>5} {:>6} {:>9} {:>9} | {:>9} {:>9} {:>9} {:>9} | {:>8} {:>8}",
        "n",
        "m",
        "rules",
        "full_ms",
        "ins1_ms",
        "insB_ms",
        "del1_ms",
        "delB_ms",
        "ins1.spd",
        "insB.spd"
    );
    for (n, m) in [(500usize, 2000usize), (1000, 4000)] {
        let g = generators::gnm(n, m, &["E"], 13);
        // A pool of fresh edges absent from g, spread across the node
        // space so the deltas are not all local to one vertex.
        let existing: std::collections::BTreeSet<(u32, u32)> =
            g.edges().iter().map(|&(u, v, _)| (u, v)).collect();
        let mut pool: Vec<(usize, usize)> = Vec::new();
        let mut i = 1usize;
        while pool.len() < 2 * UPDATES {
            let (u, v) = ((i * 37) % n, (i * 53 + 11) % n);
            if u != v && !existing.contains(&(u as u32, v as u32)) && !pool.contains(&(u, v)) {
                pool.push((u, v));
            }
            i += 1;
        }
        let singles = &pool[..UPDATES];
        let batched = &pool[UPDATES..];

        // Baseline: one full re-ground + semi-naive fixpoint — the price a
        // non-incremental engine pays for EVERY update.
        let mut p = tc.clone();
        let (db, _) = datalog::Database::from_graph(&mut p, &g);
        let (full_ms, _) = bench::time_best_ms(3, || {
            let gp = datalog::ground(&p, &db).unwrap();
            datalog::semi_naive_eval::<Tropical, _>(&gp, &unit, datalog::default_budget(&gp))
        });

        // Resident engine + maintained fixpoint, warmed outside the timers.
        let warm = |engine: &provcirc::Engine| {
            let gp = engine.grounding().expect("grounds");
            MaintainedFixpoint::start(&datalog::semi_naive_eval::<Tropical, _>(
                gp,
                &unit,
                engine.budget().expect("budget"),
            ))
        };
        let build = || {
            provcirc::Engine::builder()
                .program(tc.clone())
                .graph(&g)
                .build()
                .expect("engine builds")
        };
        let edge_name = |&(u, v): &(usize, usize)| (format!("v{u}"), format!("v{v}"));

        // Mode 1: single-fact inserts, then single-fact retracts.
        let mut engine = build();
        let mut mf = warm(&engine);
        let rules0 = engine.grounding().unwrap().rules.len();
        let t0 = Instant::now();
        for e in singles {
            let (su, sv) = edge_name(e);
            let out = engine.insert_fact("E", &[&su, &sv]).expect("insert");
            let budget = engine.budget().expect("budget");
            let gp = engine.grounding().expect("maintained grounding");
            mf.apply_insert(gp, &unit, out.base_rules, budget, &telemetry::Noop);
        }
        let ins1_ms = t0.elapsed().as_secs_f64() * 1e3 / UPDATES as f64;
        // Exactness spot-check: the maintained values equal a from-scratch
        // fixpoint over the maintained grounding.
        let check = datalog::semi_naive_eval::<Tropical, _>(engine.grounding().unwrap(), &unit, {
            engine.budget().unwrap()
        });
        assert_eq!(check.values, *mf.values(), "insert maintenance drifted");
        let t0 = Instant::now();
        for e in singles {
            let (su, sv) = edge_name(e);
            let out = engine.retract_fact("E", &[&su, &sv]).expect("retract");
            let budget = engine.budget().expect("budget");
            let gp = engine.grounding().expect("maintained grounding");
            mf.apply_retract(gp, &unit, &out.roots, budget, &telemetry::Noop);
        }
        let del1_ms = t0.elapsed().as_secs_f64() * 1e3 / UPDATES as f64;
        let check = datalog::semi_naive_eval::<Tropical, _>(engine.grounding().unwrap(), &unit, {
            engine.budget().unwrap()
        });
        assert_eq!(check.values, *mf.values(), "retract maintenance drifted");
        let report = engine.metrics_report();
        assert_eq!(report.cache.groundings, 1, "updates must not reground");

        // Mode 2: the same volume in batches of `BATCH` facts.
        let mut engine = build();
        let mut mf = warm(&engine);
        let t0 = Instant::now();
        for chunk in batched.chunks(BATCH) {
            let named: Vec<(String, String)> = chunk.iter().map(edge_name).collect();
            let facts: Vec<(&str, Vec<&str>)> = named
                .iter()
                .map(|(u, v)| ("E", vec![u.as_str(), v.as_str()]))
                .collect();
            let facts: Vec<(&str, &[&str])> =
                facts.iter().map(|(p, t)| (*p, t.as_slice())).collect();
            let out = engine.insert_facts(&facts).expect("batch insert");
            let budget = engine.budget().expect("budget");
            let gp = engine.grounding().expect("maintained grounding");
            mf.apply_insert(gp, &unit, out.base_rules, budget, &telemetry::Noop);
        }
        let ins_b_ms = t0.elapsed().as_secs_f64() * 1e3 / UPDATES as f64;
        let t0 = Instant::now();
        for chunk in batched.chunks(BATCH) {
            let named: Vec<(String, String)> = chunk.iter().map(edge_name).collect();
            let facts: Vec<(&str, Vec<&str>)> = named
                .iter()
                .map(|(u, v)| ("E", vec![u.as_str(), v.as_str()]))
                .collect();
            let facts: Vec<(&str, &[&str])> =
                facts.iter().map(|(p, t)| (*p, t.as_slice())).collect();
            let out = engine.retract_facts(&facts).expect("batch retract");
            let budget = engine.budget().expect("budget");
            let gp = engine.grounding().expect("maintained grounding");
            mf.apply_retract(gp, &unit, &out.roots, budget, &telemetry::Noop);
        }
        let del_b_ms = t0.elapsed().as_secs_f64() * 1e3 / UPDATES as f64;
        let check = datalog::semi_naive_eval::<Tropical, _>(engine.grounding().unwrap(), &unit, {
            engine.budget().unwrap()
        });
        assert_eq!(check.values, *mf.values(), "batched maintenance drifted");

        let (spd1, spd_b) = (full_ms / ins1_ms, full_ms / ins_b_ms);
        if (n, m) == (500, 2000) {
            smoke_500 = Some(spd_b);
        }
        if (n, m) == (1000, 4000) {
            headline_1k = Some((full_ms, ins1_ms));
        }
        println!(
            "   {n:>5} {m:>6} {rules0:>9} {full_ms:>9.2} | {ins1_ms:>9.3} {ins_b_ms:>9.3} {del1_ms:>9.3} {del_b_ms:>9.3} | {spd1:>7.1}x {spd_b:>7.1}x"
        );
        rows.push(format!(
            "{{\"n\": {n}, \"m\": {m}, \"grounded_rules\": {rules0}, \
             \"updates\": {UPDATES}, \"batch_size\": {BATCH}, \
             \"full_ms\": {full_ms:.3}, \
             \"insert_single_ms\": {ins1_ms:.4}, \"insert_batched_ms\": {ins_b_ms:.4}, \
             \"retract_single_ms\": {del1_ms:.4}, \"retract_batched_ms\": {del_b_ms:.4}, \
             \"speedup_insert_single\": {spd1:.1}, \"speedup_insert_batched\": {spd_b:.1}}}"
        ));
    }
    let json = format!(
        "{{\n  \"experiment\": \"incremental_maintenance\",\n  \
         \"program\": \"transitive_closure\",\n  \
         \"semiring\": \"tropical, unit weights\",\n  \
         \"workload\": \"per-update = maintained grounding + maintained fixpoint; \
         baseline = full ground + semi-naive eval (best of 3)\",\n  \
         \"cores\": {cores},\n  \"rows\": [\n    {}\n  ]\n}}\n",
        rows.join(",\n    ")
    );
    match std::fs::write("BENCH_incremental.json", &json) {
        Ok(()) => println!("   trajectory written to BENCH_incremental.json"),
        Err(e) => println!("   could not write BENCH_incremental.json: {e}"),
    }
    let (full_1k, ins1_1k) = headline_1k.expect("gnm(1000,4000) row ran");
    println!(
        "   reading: gnm(1000,4000) single-fact insert {ins1_1k:.3}ms/update vs full recompute \
         {full_1k:.2}ms [target: maintained < full]"
    );
    // CI smoke gates. The batched gate is deliberately far below the
    // measured margin (typically 100x+): a noisy shared runner must not
    // flake, and the committed trajectory records the real number.
    assert!(
        full_1k > ins1_1k,
        "single-fact insert no cheaper than full recompute on gnm(1000,4000)"
    );
    let smoke = smoke_500.expect("gnm(500,2000) row ran");
    assert!(
        smoke >= 5.0,
        "batched insert must be ≥5x a full recompute on gnm(500,2000): {smoke:.1}x"
    );
}

/// Theorem 3.5: the layered graph *is* the circuit.
fn layered() {
    header(
        "E-layered · Thm 3.5 (and the Thm 3.4 contrast)",
        "st-connectivity provenance on a layered graph: linear-size, linear-depth circuits (while *depth-optimal* circuits need Θ(log² n), Thm 3.4)",
    );
    println!(
        "   {:>6} {:>8} {:>9} {:>7} {:>9} {:>12}",
        "width", "layers", "gates", "depth", "gates/m", "sq.depth"
    );
    for (w, l) in [(3usize, 4usize), (4, 8), (5, 16), (6, 32)] {
        let (g, s, t) = generators::layered(w, l, 0.8, "E", 2);
        let c = circuit::dag_path_circuit_graph(&g, s, t).unwrap();
        let st = circuit::stats(&c);
        let sq = circuit::squaring_graph(&g).circuit_for(s, t);
        let sq_depth = circuit::stats(&sq).depth;
        // Compare through the tropical semiring: the Sorp polynomial has
        // exponentially many monomials on wide layered graphs.
        let wt = from_fn(|e: u32| Tropical::new((e as u64 % 7) + 1));
        assert!(c.eval(&wt).sr_eq(&sq.eval(&wt)));
        println!(
            "   {:>6} {:>8} {:>9} {:>7} {:>9.3} {:>12}",
            w,
            l,
            st.num_gates,
            st.depth,
            st.num_gates as f64 / g.num_edges() as f64,
            sq_depth,
        );
    }
    println!("   reading: Thm 3.5 linear size & linear depth; squaring trades a size blow-up for polylog depth.");
}

/// §2.3: p-stability and convergence.
fn stability() {
    header(
        "E-stability · §2.3 (p-stable semirings)",
        "absorptive = 0-stable (converges); Trop_k is (k-1)-stable (converges later); counting is not p-stable (diverges on cycles)",
    );
    let tc = programs::transitive_closure();
    println!(
        "   {:>5} | {:>10} {:>10} {:>10} {:>12}",
        "n", "Bool", "Trop", "Trop_3", "Counting"
    );
    for n in [3usize, 5, 8] {
        let g = generators::cycle(n, "E");
        let (_, _, gp) = ground_on_graph(&tc, &g);
        let budget = datalog::default_budget(&gp).max(120);
        let b = datalog::eval_all_ones::<Bool>(&gp, budget);
        let t =
            datalog::naive_eval::<Tropical, _>(&gp, &UnitWeights::new(Tropical::new(1)), budget);
        let t3 =
            datalog::naive_eval::<TropK<3>, _>(&gp, &UnitWeights::new(TropK::single(1)), budget);
        let c = datalog::naive_eval::<Counting, _>(&gp, &UnitWeights::new(Counting::new(1)), 120);
        let show = |iters: usize, conv: bool| {
            if conv {
                format!("{iters} it")
            } else {
                "diverges".to_owned()
            }
        };
        println!(
            "   {:>5} | {:>10} {:>10} {:>10} {:>12}",
            n,
            show(b.iterations, b.converged),
            show(t.iterations, t.converged),
            show(t3.iterations, t3.converged),
            show(c.iterations, c.converged),
        );
    }
}

/// Thm 5.6 vs Thm 5.7: the size/depth trade-off across densities.
fn crossover() {
    header(
        "E-crossover · Thm 5.6 vs Thm 5.7",
        "Bellman–Ford never loses on size (O(mn) ≤ O(n³ log n)) but pays Θ(n log n) depth; squaring pays a log-factor in size on dense graphs to win exponentially in depth",
    );
    println!(
        "   {:>5} {:>9} | {:>10} {:>7} | {:>10} {:>7} | {:>10} {:>10}",
        "n", "density", "BF.gates", "BF.dep", "SQ.gates", "SQ.dep", "size ratio", "depth ratio"
    );
    for n in [12usize, 24] {
        for (dname, m) in [("sparse", 2 * n), ("dense", n * (n - 1) / 2)] {
            let g = generators::gnm(n, m, &["E"], 17);
            let (src, dst) = bench::best_long_pair(&g).expect("has edges");
            let bf = circuit::stats(&circuit::bellman_ford_graph(&g, src, dst));
            let sq = circuit::stats(&circuit::squaring_graph(&g).circuit_for(src, dst));
            println!(
                "   {:>5} {:>9} | {:>10} {:>7} | {:>10} {:>7} | {:>10.2} {:>10.2}",
                n,
                dname,
                bf.num_gates,
                bf.depth,
                sq.num_gates,
                sq.depth,
                sq.num_gates as f64 / bf.num_gates as f64,
                bf.depth as f64 / sq.depth as f64,
            );
        }
    }
    println!("   reading: the parallelization dividend (depth ratio) grows with n; the size premium stays a polylog factor on dense inputs.");
}

/// The committed `BENCH_seminaive.json` must record the tentpole's ≥2x
/// speedup on the gnm(200,800)-scale row, and `BENCH_parallel.json` must
/// record value-agreement plus — when measured on a host with ≥4 physical
/// cores — a ≥2.5x 4-thread speedup on the gnm(2000,8000) row.
#[cfg(test)]
mod tests {
    /// Extract a numeric JSON field from a flat `"key": value` line.
    fn field(line: &str, key: &str) -> f64 {
        line.split(&format!("\"{key}\": "))
            .nth(1)
            .and_then(|s| s.split(&[',', '}', '\n'][..]).next())
            .unwrap_or_else(|| panic!("field {key} present in {line}"))
            .trim()
            .parse()
            .unwrap_or_else(|_| panic!("field {key} parses in {line}"))
    }

    #[test]
    fn committed_trajectory_meets_speedup_target() {
        let json = include_str!("../../../../BENCH_seminaive.json");
        let row = json
            .lines()
            .find(|l| l.contains("\"n\": 200"))
            .expect("gnm(200,800) row present");
        let speedup = field(row, "speedup");
        assert!(speedup >= 2.0, "committed trajectory records {speedup}x");
    }

    #[test]
    fn committed_parallel_trajectory_is_coherent() {
        let json = include_str!("../../../../BENCH_parallel.json");
        assert!(
            json.contains("\"agree\": true"),
            "parallel evaluation must record value agreement with 1 thread"
        );
        let cores = field(
            json.lines()
                .find(|l| l.contains("\"cores\":"))
                .expect("cores recorded"),
            "cores",
        ) as usize;
        let headline = json
            .lines()
            .find(|l| l.contains("\"n\": 2000") && l.contains("\"threads\": 4"))
            .expect("gnm(2000,8000) × 4-thread row present");
        let best = field(headline, "naive_speedup").max(field(headline, "semi_speedup"));
        // Wall-clock speedup needs physical cores. The trajectory records
        // the host's count so the gate arms exactly when it is meaningful
        // (CI runners have ≥4; a 1-core container cannot exceed 1x). The
        // owner-sharded scheduler raised the armed bar to the ROADMAP
        // target: ≥2.5x at 4 threads.
        if cores >= 4 {
            assert!(
                best >= 2.5,
                "committed parallel trajectory records {best}x at 4 threads on {cores} cores"
            );
        } else {
            assert!(
                best > 0.0,
                "committed parallel trajectory records a nonsensical speedup {best}x"
            );
        }
        // The schema carries the scheduler's per-worker stealing and
        // mailbox-volume attribution.
        let shard = json
            .lines()
            .find(|l| l.contains("\"steals\":"))
            .expect("per-worker shard rows carry steal counts");
        assert!(field(shard, "steals") >= 0.0);
        assert!(field(shard, "mailbox") >= 0.0);
    }

    #[test]
    fn committed_incremental_trajectory_is_coherent() {
        let json = include_str!("../../../../BENCH_incremental.json");
        // The honest-hardware field the acceptance bar asks for.
        let cores = field(
            json.lines()
                .find(|l| l.contains("\"cores\":"))
                .expect("cores recorded"),
            "cores",
        ) as usize;
        assert!(cores >= 1, "cores field must record the measuring host");
        // The tentpole's headline: maintained single-fact inserts beat a
        // full re-ground + re-eval per update on gnm(1000,4000) TC. This
        // is algorithmic (O(cone) vs O(grounding) work), so it holds on
        // any host — no core gate.
        let row = json
            .lines()
            .find(|l| l.contains("\"n\": 1000"))
            .expect("gnm(1000,4000) row present");
        let (full, single) = (field(row, "full_ms"), field(row, "insert_single_ms"));
        assert!(
            single < full,
            "committed trajectory records single-insert {single}ms vs full {full}ms"
        );
        // Batched amortization holds with margin on the small row too.
        let small = json
            .lines()
            .find(|l| l.contains("\"n\": 500"))
            .expect("gnm(500,2000) row present");
        assert!(field(small, "speedup_insert_batched") >= 5.0);
        for key in [
            "retract_single_ms",
            "retract_batched_ms",
            "insert_batched_ms",
        ] {
            assert!(field(row, key) > 0.0, "{key} recorded");
        }
    }

    #[test]
    fn committed_serving_trajectory_is_coherent() {
        let json = include_str!("../../../../BENCH_serving.json");
        let cores = field(
            json.lines()
                .find(|l| l.contains("\"cores\":"))
                .expect("cores recorded"),
            "cores",
        ) as usize;
        let row = |workers: usize| {
            json.lines()
                .find(|l| l.contains(&format!("\"workers\": {workers},")))
                .unwrap_or_else(|| panic!("{workers}-worker row present"))
                .to_owned()
        };
        // Batch amortization is algorithmic — one fixpoint per frame group
        // instead of one per query — so it must hold on any host.
        for workers in [1usize, 4, 8] {
            let r = row(workers);
            assert!(
                field(&r, "amortization") >= 1.2,
                "batch amortization collapsed in the {workers}-worker row"
            );
            assert!(field(&r, "single_qps") > 0.0 && field(&r, "batch_qps") > 0.0);
        }
        // Worker-pool throughput scaling needs physical cores; the
        // trajectory records the host's count so the gate arms exactly
        // when it is meaningful (a 1-core container time-slices workers).
        if cores >= 4 {
            assert!(
                field(&row(4), "single_qps") >= field(&row(1), "single_qps"),
                "committed serving trajectory lost throughput going 1 → 4 workers on {cores} cores"
            );
        }
    }
}
