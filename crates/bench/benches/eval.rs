//! Naive-evaluation throughput across semirings (the engine substrate).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use datalog::programs;
use graphgen::generators;
use semiring::prelude::*;

fn bench_eval_semirings(c: &mut Criterion) {
    let g = generators::gnm(24, 96, &["E"], 5);
    let (_, _, gp) = bench::ground_on_graph(&programs::transitive_closure(), &g);
    let budget = datalog::default_budget(&gp);
    let mut group = c.benchmark_group("eval/tc_gnm24");

    group.bench_function("boolean", |b| {
        b.iter(|| datalog::eval_all_ones::<Bool>(&gp, budget))
    });
    group.bench_function("tropical", |b| {
        b.iter(|| {
            datalog::naive_eval::<Tropical, _>(
                &gp,
                &from_fn(|f| Tropical::new(f as u64 % 7 + 1)),
                budget,
            )
        })
    });
    group.bench_function("fuzzy", |b| {
        b.iter(|| {
            datalog::naive_eval::<Fuzzy, _>(
                &gp,
                &from_fn(|f| Fuzzy::new((f % 10) as f64 / 10.0)),
                budget,
            )
        })
    });
    group.bench_function("viterbi", |b| {
        b.iter(|| {
            datalog::naive_eval::<Viterbi, _>(
                &gp,
                &from_fn(|f| Viterbi::new(0.5 + (f % 5) as f64 / 10.0)),
                budget,
            )
        })
    });
    group.bench_function("trop3", |b| {
        b.iter(|| {
            datalog::naive_eval::<TropK<3>, _>(
                &gp,
                &from_fn(|f| TropK::single(f as u64 % 7 + 1)),
                budget,
            )
        })
    });
    group.finish();
}

fn bench_eval_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("eval/tc_scaling_boolean");
    for n in [12usize, 24, 48] {
        let g = generators::gnm(n, 4 * n, &["E"], 5);
        let (_, _, gp) = bench::ground_on_graph(&programs::transitive_closure(), &g);
        let budget = datalog::default_budget(&gp);
        group.bench_with_input(BenchmarkId::from_parameter(n), &gp, |b, gp| {
            b.iter(|| datalog::eval_all_ones::<Bool>(gp, budget))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_eval_semirings, bench_eval_scaling);
criterion_main!(benches);
