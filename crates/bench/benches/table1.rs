//! Criterion timing for the Table-1 constructions: how long it takes to
//! *build* each circuit class as the input grows.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use datalog::programs;
use graphgen::generators;

fn bench_finite_rpq(c: &mut Criterion) {
    let program = datalog::parse_program(
        "P3(X,Y) :- P2(X,Z), E(Z,Y).\nP2(X,Y) :- P1(X,Z), E(Z,Y).\nP1(X,Y) :- E(X,Y).\n@target P3",
    )
    .unwrap();
    let mut group = c.benchmark_group("table1/finite_rpq_build");
    for n in [32usize, 64, 128] {
        let g = generators::gnm(n, 4 * n, &["E"], 7);
        group.bench_with_input(BenchmarkId::from_parameter(n), &g, |b, g| {
            b.iter(|| circuit::finite_rpq_circuit(&program, g, 0, (n - 1) as u32).unwrap())
        });
    }
    group.finish();
}

fn bench_bellman_ford(c: &mut Criterion) {
    let mut group = c.benchmark_group("table1/bellman_ford_build");
    for n in [16usize, 32, 64] {
        let g = generators::gnm(n, 3 * n, &["E"], 11);
        group.bench_with_input(BenchmarkId::from_parameter(n), &g, |b, g| {
            b.iter(|| circuit::bellman_ford_graph(g, 0, (n - 1) as u32))
        });
    }
    group.finish();
}

fn bench_squaring(c: &mut Criterion) {
    let mut group = c.benchmark_group("table1/squaring_build");
    group.sample_size(10);
    for n in [8usize, 16, 32] {
        let g = generators::gnm(n, 3 * n, &["E"], 11);
        group.bench_with_input(BenchmarkId::from_parameter(n), &g, |b, g| {
            b.iter(|| circuit::squaring_graph(g))
        });
    }
    group.finish();
}

fn bench_grounded_dyck(c: &mut Criterion) {
    let mut group = c.benchmark_group("table1/dyck_grounded_build");
    group.sample_size(10);
    for pairs in [3usize, 5, 7] {
        let g = generators::dyck_path(pairs, 3);
        let (_, _, gp) = bench::ground_on_graph(&programs::dyck1(), &g);
        group.bench_with_input(BenchmarkId::from_parameter(pairs), &gp, |b, gp| {
            b.iter(|| circuit::grounded_circuit(gp, None))
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_finite_rpq,
    bench_bellman_ford,
    bench_squaring,
    bench_grounded_dyck
);
criterion_main!(benches);
