//! Head-to-head timing of the two TC constructions (Thm 5.6 vs Thm 5.7)
//! on sparse and dense inputs — the build-cost companion of the
//! `crossover` experiment.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use graphgen::generators;

fn bench_sparse(c: &mut Criterion) {
    let mut group = c.benchmark_group("tc/sparse_m=2n");
    group.sample_size(10);
    for n in [16usize, 32] {
        let g = generators::gnm(n, 2 * n, &["E"], 3);
        group.bench_with_input(BenchmarkId::new("bellman_ford", n), &g, |b, g| {
            b.iter(|| circuit::bellman_ford_graph(g, 0, (n - 1) as u32))
        });
        group.bench_with_input(BenchmarkId::new("squaring", n), &g, |b, g| {
            b.iter(|| circuit::squaring_graph(g))
        });
    }
    group.finish();
}

fn bench_dense(c: &mut Criterion) {
    let mut group = c.benchmark_group("tc/dense");
    group.sample_size(10);
    for n in [12usize, 24] {
        let g = generators::complete(n, "E");
        group.bench_with_input(BenchmarkId::new("bellman_ford", n), &g, |b, g| {
            b.iter(|| circuit::bellman_ford_graph(g, 0, (n - 1) as u32))
        });
        group.bench_with_input(BenchmarkId::new("squaring", n), &g, |b, g| {
            b.iter(|| circuit::squaring_graph(g))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_sparse, bench_dense);
criterion_main!(benches);
