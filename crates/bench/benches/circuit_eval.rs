//! Circuit evaluation is linear in circuit size — the paper's premise that
//! circuits are efficient provenance stores (§1: "the polynomial value can
//! be computed in time linear to the representation size").

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use graphgen::generators;
use semiring::prelude::*;

fn bench_circuit_eval(c: &mut Criterion) {
    let mut group = c.benchmark_group("circuit_eval/bellman_ford_tropical");
    for n in [16usize, 32, 64] {
        let g = generators::gnm(n, 4 * n, &["E"], 13);
        let circ = circuit::bellman_ford_graph(&g, 0, (n - 1) as u32);
        let gates = circuit::stats(&circ).num_gates;
        group.throughput(criterion::Throughput::Elements(gates as u64));
        group.bench_with_input(BenchmarkId::from_parameter(n), &circ, |b, circ| {
            b.iter(|| circ.eval(&from_fn(|f| Tropical::new(f as u64 % 9 + 1))))
        });
    }
    group.finish();
}

fn bench_eval_semiring_cost(c: &mut Criterion) {
    let g = generators::gnm(32, 128, &["E"], 13);
    let circ = circuit::bellman_ford_graph(&g, 0, 31);
    let mut group = c.benchmark_group("circuit_eval/semiring_cost");
    group.bench_function("boolean", |b| {
        b.iter(|| circ.eval(&from_fn(|_| Bool(true))))
    });
    group.bench_function("tropical", |b| {
        b.iter(|| circ.eval(&from_fn(|f| Tropical::new(f as u64 % 9 + 1))))
    });
    group.bench_function("bottleneck", |b| {
        b.iter(|| circ.eval(&from_fn(|f| Bottleneck::new(f as u64 % 9 + 1))))
    });
    group.bench_function("trop3", |b| {
        b.iter(|| circ.eval(&from_fn(|f| TropK::<3>::single(f as u64 % 9 + 1))))
    });
    group.finish();
}

criterion_group!(benches, bench_circuit_eval, bench_eval_semiring_cost);
criterion_main!(benches);
