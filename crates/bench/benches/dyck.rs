//! Dyck-1 reachability (Example 6.4): CFL-reachability solving and the
//! Ullman–Van Gelder circuit build.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use datalog::programs;
use grammar::{CflOptions, Cnf};
use graphgen::generators;

fn bench_cfl_reach(c: &mut Criterion) {
    let cnf = Cnf::from_cfg(&grammar::Cfg::dyck1());
    let mut group = c.benchmark_group("dyck/cfl_reachability");
    for pairs in [8usize, 16, 32] {
        let g = generators::dyck_path(pairs, 3);
        // Translate graph labels to grammar terminals (names match L/R).
        let edges: Vec<(u32, u32, u32)> = g
            .edges()
            .iter()
            .map(|&(u, v, t)| {
                let name = g.alphabet.name(t);
                (u, v, cnf.alphabet.get(name).unwrap())
            })
            .collect();
        group.bench_with_input(BenchmarkId::from_parameter(pairs), &edges, |b, edges| {
            b.iter(|| grammar::cflreach::solve(&cnf, g.num_nodes(), edges, CflOptions::default()))
        });
    }
    group.finish();
}

fn bench_uvg_build(c: &mut Criterion) {
    let mut group = c.benchmark_group("dyck/uvg_build");
    group.sample_size(10);
    for pairs in [2usize, 4, 6] {
        let g = generators::dyck_path(pairs, 3);
        let (_, _, gp) = bench::ground_on_graph(&programs::dyck1(), &g);
        group.bench_with_input(BenchmarkId::from_parameter(pairs), &gp, |b, gp| {
            b.iter(|| circuit::uvg_circuit(gp, None))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_cfl_reach, bench_uvg_build);
criterion_main!(benches);
