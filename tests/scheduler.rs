//! Scheduler-focused property tests for the owner-sharded parallel core.
//!
//! Three angles the broad agreement suite does not stress:
//!
//! 1. **Adversarial skew** — a hub vertex owning ~90% of the edges makes
//!    one frontier shard vastly heavier than the rest, so these cases
//!    pass only if work stealing preserves the deterministic
//!    chunk-order reassembly (a thief that mangled task attribution
//!    would reorder ⊕-folds and change Sorp polynomials).
//! 2. **Mailbox drain order** — per-owner contributions must drain in
//!    the same (round, producer) order at every thread count; Counting
//!    (⊕ = +, non-idempotent) makes every duplicate or reordered
//!    deposit visible, Sorp makes reordered folds visible.
//! 3. **Parallel circuit-arena evaluation** — the level-synchronous
//!    schedule over provenance circuits must be bit-identical to the
//!    sequential bottom-up pass.

use datalog_circuits::circuit;
use datalog_circuits::datalog::{self, programs, Database};
use datalog_circuits::graphgen::LabeledDigraph;
use datalog_circuits::semiring::prelude::*;
use proptest::{any, prop_assert_eq, proptest, ProptestConfig};

fn splitmix(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A deliberately skewed instance: one hub vertex is an endpoint of 90%
/// of the edges, so its frontier shard dwarfs every other worker's share
/// and rounds serialize unless the idle workers steal from it.
fn hub_graph(n: usize, m: usize, seed: u64) -> LabeledDigraph {
    let mut g = LabeledDigraph::new(n);
    let mut rng = seed;
    let hub = (splitmix(&mut rng) % n as u64) as u32;
    for i in 0..m {
        let other = (splitmix(&mut rng) % n as u64) as u32;
        if i % 10 == 9 {
            // The 10% of edges that avoid the hub keep the instance
            // connected beyond the star.
            let u = (splitmix(&mut rng) % n as u64) as u32;
            g.add_edge(u, other, "E");
        } else if i % 2 == 0 {
            g.add_edge(hub, other, "E");
        } else {
            g.add_edge(other, hub, "E");
        }
    }
    g
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Par ≡ seq under adversarial hub skew, for grounding (both
    /// phases), semi-naive eval, and the fused pipeline, at 2/4/8
    /// threads. Sorp equality pins the exact ⊕-fold order, not just the
    /// numeric answer.
    #[test]
    fn work_stealing_stays_deterministic_under_hub_skew(
        n in 5usize..10,
        m in 24usize..48,
        seed in any::<u64>(),
    ) {
        let g = hub_graph(n, m, seed);
        let mut p = programs::transitive_closure();
        let (db, _) = Database::from_graph(&mut p, &g);
        let gp = datalog::ground(&p, &db).unwrap();
        let budget = datalog::default_budget(&gp);
        let unit = UnitWeights::new(Tropical::new(1));
        let seq_trop = datalog::semi_naive_eval::<Tropical, _>(&gp, &unit, budget);
        let seq_sorp = datalog::semi_naive_eval::<Sorp, _>(&gp, &VarTags, budget);
        let fus_seq = datalog::fused_eval::<Tropical, _>(&p, &db, &unit, Some(budget)).unwrap();
        for threads in [2usize, 4, 8] {
            let gp_par = datalog::par_ground(&p, &db, threads).unwrap();
            prop_assert_eq!(&gp.idb_facts, &gp_par.idb_facts, "grounding facts, threads={}", threads);
            prop_assert_eq!(&gp.rules, &gp_par.rules, "grounded rules, threads={}", threads);

            let par_trop = datalog::par_semi_naive_eval::<Tropical, _>(&gp, &unit, budget, threads);
            prop_assert_eq!(seq_trop.converged, par_trop.converged, "threads={}", threads);
            prop_assert_eq!(&seq_trop.values, &par_trop.values, "tropical values, threads={}", threads);
            let par_sorp = datalog::par_semi_naive_eval::<Sorp, _>(&gp, &VarTags, budget, threads);
            prop_assert_eq!(&seq_sorp.values, &par_sorp.values, "sorp values, threads={}", threads);

            let fus_par =
                datalog::par_fused_eval::<Tropical, _>(&p, &db, &unit, Some(budget), threads)
                    .unwrap();
            prop_assert_eq!(
                &fus_seq.gp.idb_facts, &fus_par.gp.idb_facts,
                "fused discovery order, threads={}", threads
            );
            prop_assert_eq!(&fus_seq.values, &fus_par.values, "fused values, threads={}", threads);
        }
    }

    /// One ICO application must deposit cross-owner contributions in an
    /// order independent of the worker count: every thread count in
    /// 2..=8 replays the sequential `add_assign` sequence exactly.
    /// Counting (non-idempotent ⊕) catches dropped or duplicated
    /// mailbox entries; Sorp catches reordered folds.
    #[test]
    fn mailbox_drain_order_is_stable_across_thread_counts(
        n in 5usize..10,
        m in 24usize..48,
        seed in any::<u64>(),
    ) {
        let g = hub_graph(n, m, seed);
        let mut p = programs::transitive_closure();
        let (db, _) = Database::from_graph(&mut p, &g);
        let gp = datalog::ground(&p, &db).unwrap();

        let state = vec![Sorp::zero(); gp.num_idb_facts()];
        let sorp_base = datalog::ico::<Sorp, _>(&gp, &VarTags, &state);
        let cunit = UnitWeights::new(Counting::new(1));
        let cstate = vec![Counting::zero(); gp.num_idb_facts()];
        let count_base = datalog::ico::<Counting, _>(&gp, &cunit, &cstate);
        // A mid-fixpoint state too: non-zero inputs make ⊗-products
        // asymmetric, so a reordered drain cannot cancel out.
        let warm: Vec<Counting> = (0..gp.num_idb_facts())
            .map(|i| Counting::new(i as u64 % 3))
            .collect();
        let warm_base = datalog::ico::<Counting, _>(&gp, &cunit, &warm);
        for threads in 2usize..=8 {
            prop_assert_eq!(
                &sorp_base,
                &datalog::par_ico::<Sorp, _>(&gp, &VarTags, &state, threads),
                "sorp ico, threads={}", threads
            );
            prop_assert_eq!(
                &count_base,
                &datalog::par_ico::<Counting, _>(&gp, &cunit, &cstate, threads),
                "counting ico, threads={}", threads
            );
            prop_assert_eq!(
                &warm_base,
                &datalog::par_ico::<Counting, _>(&gp, &cunit, &warm, threads),
                "warm counting ico, threads={}", threads
            );
        }
    }

    /// Level-synchronous parallel arena evaluation is bit-identical to
    /// the sequential bottom-up pass on Sorp provenance circuits (and a
    /// numeric semiring through the same layers).
    #[test]
    fn parallel_arena_eval_agrees_on_sorp_circuits(
        n in 4usize..8,
        m in 6usize..16,
        seed in any::<u64>(),
    ) {
        let g = hub_graph(n, m, seed);
        let mut p = programs::transitive_closure();
        let (db, _) = Database::from_graph(&mut p, &g);
        let gp = datalog::ground(&p, &db).unwrap();
        let mo = circuit::grounded_circuit(&gp, None);
        for fact in 0..gp.num_idb_facts().min(6) {
            let c = mo.circuit_for(fact);
            let seq: Sorp = c.eval(&VarTags);
            for threads in [2usize, 4, 8] {
                prop_assert_eq!(
                    &seq,
                    &c.eval_par::<Sorp, _>(&VarTags, threads),
                    "fact={} threads={}", fact, threads
                );
            }
            let assign = from_fn(|v: u32| Tropical::new(v as u64 % 7 + 1));
            prop_assert_eq!(
                c.eval::<Tropical, _>(&assign),
                c.eval_par(&assign, 4),
                "tropical fact={}", fact
            );
        }
    }
}
