//! Cross-semiring agreement through the `Engine` facade: on the paper's
//! Figure 1 graph, `engine.query(…).eval::<S>(…)` must match both direct
//! `Circuit::eval` of the compiled circuit and `naive_eval` over the same
//! grounded program — for `Bool`, `Tropical`, `Counting` (the instance is a
//! DAG, so counting converges), and `Sorp`.

use datalog_circuits::datalog::{self, programs};
use datalog_circuits::graphgen::LabeledDigraph;
use datalog_circuits::provcirc::prelude::*;
use datalog_circuits::semiring::prelude::*;

/// The paper's Figure 1 graph: s=0, u1=1, u2=2, v1=3, v2=4, t=5. Acyclic.
fn figure1() -> LabeledDigraph {
    let mut g = LabeledDigraph::new(6);
    for (u, v) in [(0, 1), (0, 2), (1, 3), (1, 4), (2, 4), (3, 5), (4, 5)] {
        g.add_edge(u, v, "E");
    }
    g
}

fn figure1_engine() -> Engine {
    Engine::builder()
        .program(programs::transitive_closure())
        .graph(&figure1())
        .build()
        .unwrap()
}

/// Facade evaluation ≡ compiled-circuit evaluation ≡ naive evaluation of
/// the identical grounding, for every node pair and semiring.
fn assert_agreement<S: Semiring, V: Valuation<S>>(engine: &Engine, valuation: &V) {
    let gp = engine.grounding().unwrap();
    let naive = datalog::naive_eval::<S, _>(gp, valuation, datalog::default_budget(gp));
    assert!(naive.converged, "{} must converge on Figure 1", S::NAME);
    for src in 0..6u32 {
        for dst in 0..6u32 {
            let q = engine.node_query(src, dst).unwrap();
            let via_engine: S = q.eval(valuation).unwrap();
            let via_circuit: S = q
                .circuit(Strategy::GroundedFixpoint)
                .unwrap()
                .circuit
                .eval(valuation);
            let via_naive = match q.fact_index().unwrap() {
                Some(f) => naive.values[f].clone(),
                None => S::zero(),
            };
            assert!(
                via_engine.sr_eq(&via_circuit),
                "{} ({src},{dst}): engine {via_engine:?} vs circuit {via_circuit:?}",
                S::NAME
            );
            assert!(
                via_engine.sr_eq(&via_naive),
                "{} ({src},{dst}): engine {via_engine:?} vs naive {via_naive:?}",
                S::NAME
            );
        }
    }
}

#[test]
fn bool_agreement_on_figure1() {
    assert_agreement::<Bool, _>(&figure1_engine(), &AllOnes);
}

#[test]
fn tropical_agreement_on_figure1() {
    let engine = figure1_engine();
    assert_agreement::<Tropical, _>(&engine, &UnitWeights::new(Tropical::new(1)));
    // Distinct edge weights through the session's edge-fact alignment.
    let weighted =
        FromEdgeWeights::from_fn(engine.edge_facts(), |i| Tropical::new(i as u64 % 4 + 1));
    assert_agreement::<Tropical, _>(&engine, &weighted);
}

#[test]
fn counting_agreement_on_figure1() {
    // Figure 1 is a DAG, so path counting converges: s→t has 3 paths.
    let engine = figure1_engine();
    assert_agreement::<Counting, _>(&engine, &AllOnes);
    let st: Counting = engine.node_query(0, 5).unwrap().eval(&AllOnes).unwrap();
    assert_eq!(st, Counting::new(3));
}

#[test]
fn sorp_agreement_on_figure1() {
    let engine = figure1_engine();
    assert_agreement::<Sorp, _>(&engine, &VarTags);
    // The facade's provenance accessor is the same polynomial.
    for (src, dst) in [(0u32, 5u32), (1, 5), (0, 4)] {
        let q = engine.node_query(src, dst).unwrap();
        let via_eval: Sorp = q.eval(&VarTags).unwrap();
        assert_eq!(q.provenance().unwrap(), via_eval, "({src},{dst})");
    }
    // Paper Figure 1: three source-to-target paths, each a 3-edge monomial.
    let st = engine.node_query(0, 5).unwrap().provenance().unwrap();
    assert_eq!(st.len(), 3);
    assert!(st.monomials().iter().all(|m| m.degree() == 3));
}

/// The whole battery above reuses ONE grounding and ONE classification —
/// the facade's core caching contract, asserted by counting `ground()`
/// invocations across many queries, evaluations, and compilations.
#[test]
fn agreement_battery_grounds_once() {
    let engine = figure1_engine();
    assert_agreement::<Bool, _>(&engine, &AllOnes);
    assert_agreement::<Tropical, _>(&engine, &UnitWeights::new(Tropical::new(1)));
    assert_agreement::<Counting, _>(&engine, &AllOnes);
    assert_agreement::<Sorp, _>(&engine, &VarTags);
    let stats = engine.cache_stats();
    assert_eq!(stats.groundings, 1, "{stats:?}");
    assert_eq!(stats.classifications, 1, "{stats:?}");
    // 36 node pairs × 4 batteries, but each derivable fact's circuit is
    // compiled exactly once and served from cache afterwards.
    assert!(stats.circuit_cache_hits > stats.circuits_built, "{stats:?}");
}
