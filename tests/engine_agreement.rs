//! Cross-semiring agreement through the `Engine` facade: on the paper's
//! Figure 1 graph, `engine.query(…).eval::<S>(…)` must match both direct
//! `Circuit::eval` of the compiled circuit and `naive_eval` over the same
//! grounded program — for `Bool`, `Tropical`, `Counting` (the instance is a
//! DAG, so counting converges), and `Sorp` — plus property tests that the
//! semi-naive and naive fixpoints compute identical values on random `gnm`
//! graphs.

use datalog_circuits::datalog::{self, programs};
use datalog_circuits::graphgen::{generators, LabeledDigraph};
use datalog_circuits::provcirc::prelude::*;
use datalog_circuits::semiring::prelude::*;
// Selective import: proptest's prelude would shadow `provcirc::Strategy`
// with its generator trait of the same name.
use proptest::{any, prop_assert, prop_assert_eq, proptest, ProptestConfig, TestCaseError};

/// The paper's Figure 1 graph: s=0, u1=1, u2=2, v1=3, v2=4, t=5. Acyclic.
fn figure1() -> LabeledDigraph {
    let mut g = LabeledDigraph::new(6);
    for (u, v) in [(0, 1), (0, 2), (1, 3), (1, 4), (2, 4), (3, 5), (4, 5)] {
        g.add_edge(u, v, "E");
    }
    g
}

fn figure1_engine() -> Engine {
    Engine::builder()
        .program(programs::transitive_closure())
        .graph(&figure1())
        .build()
        .unwrap()
}

/// Facade evaluation ≡ compiled-circuit evaluation ≡ naive evaluation of
/// the identical grounding, for every node pair and semiring.
fn assert_agreement<S: Semiring, V: Valuation<S>>(engine: &Engine, valuation: &V) {
    let gp = engine.grounding().unwrap();
    let naive = datalog::naive_eval::<S, _>(gp, valuation, datalog::default_budget(gp));
    assert!(naive.converged, "{} must converge on Figure 1", S::NAME);
    for src in 0..6u32 {
        for dst in 0..6u32 {
            let q = engine.node_query(src, dst).unwrap();
            let via_engine: S = q.eval(valuation).unwrap();
            let via_circuit: S = q
                .circuit(Strategy::GroundedFixpoint)
                .unwrap()
                .circuit
                .eval(valuation);
            let via_naive = match q.fact_index().unwrap() {
                Some(f) => naive.values[f].clone(),
                None => S::zero(),
            };
            assert!(
                via_engine.sr_eq(&via_circuit),
                "{} ({src},{dst}): engine {via_engine:?} vs circuit {via_circuit:?}",
                S::NAME
            );
            assert!(
                via_engine.sr_eq(&via_naive),
                "{} ({src},{dst}): engine {via_engine:?} vs naive {via_naive:?}",
                S::NAME
            );
        }
    }
}

#[test]
fn bool_agreement_on_figure1() {
    assert_agreement::<Bool, _>(&figure1_engine(), &AllOnes);
}

#[test]
fn tropical_agreement_on_figure1() {
    let engine = figure1_engine();
    assert_agreement::<Tropical, _>(&engine, &UnitWeights::new(Tropical::new(1)));
    // Distinct edge weights through the session's edge-fact alignment.
    let weighted =
        FromEdgeWeights::from_fn(engine.edge_facts(), |i| Tropical::new(i as u64 % 4 + 1));
    assert_agreement::<Tropical, _>(&engine, &weighted);
}

#[test]
fn counting_agreement_on_figure1() {
    // Figure 1 is a DAG, so path counting converges: s→t has 3 paths.
    let engine = figure1_engine();
    assert_agreement::<Counting, _>(&engine, &AllOnes);
    let st: Counting = engine.node_query(0, 5).unwrap().eval(&AllOnes).unwrap();
    assert_eq!(st, Counting::new(3));
}

#[test]
fn sorp_agreement_on_figure1() {
    let engine = figure1_engine();
    assert_agreement::<Sorp, _>(&engine, &VarTags);
    // The facade's provenance accessor is the same polynomial.
    for (src, dst) in [(0u32, 5u32), (1, 5), (0, 4)] {
        let q = engine.node_query(src, dst).unwrap();
        let via_eval: Sorp = q.eval(&VarTags).unwrap();
        assert_eq!(q.provenance().unwrap(), via_eval, "({src},{dst})");
    }
    // Paper Figure 1: three source-to-target paths, each a 3-edge monomial.
    let st = engine.node_query(0, 5).unwrap().provenance().unwrap();
    assert_eq!(st.len(), 3);
    assert!(st.monomials().iter().all(|m| m.degree() == 3));
}

/// Naive and semi-naive agree on every value — asserted per semiring so a
/// failure names the algebra that broke.
fn assert_strategies_agree<S: Semiring, V: Valuation<S>>(
    gp: &datalog::GroundedProgram,
    valuation: &V,
) -> Result<(), TestCaseError> {
    let budget = datalog::default_budget(gp);
    let naive = datalog::naive_eval::<S, _>(gp, valuation, budget);
    let semi = datalog::semi_naive_eval::<S, _>(gp, valuation, budget);
    prop_assert_eq!(naive.converged, semi.converged, "{} convergence", S::NAME);
    prop_assert_eq!(naive.values.len(), semi.values.len());
    for (i, (a, b)) in naive.values.iter().zip(&semi.values).enumerate() {
        prop_assert!(
            a.sr_eq(b),
            "{} fact {}: naive {:?} vs semi-naive {:?}",
            S::NAME,
            i,
            a,
            b
        );
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// `EvalOutcome.values` is identical across the two strategies for
    /// Bool, Tropical, TropK and Sorp on random gnm transitive closures
    /// (cycles included — all four are ⊕-idempotent, so the delta path
    /// really runs).
    #[test]
    fn seminaive_matches_naive_on_random_gnm(
        n in 4usize..9,
        m in 6usize..20,
        seed in any::<u64>(),
    ) {
        let g = generators::gnm(n, m, &["E"], seed);
        let mut p = programs::transitive_closure();
        let (db, _) = datalog::Database::from_graph(&mut p, &g);
        let gp = datalog::ground(&p, &db).unwrap();
        assert_strategies_agree::<Bool, _>(&gp, &AllOnes)?;
        assert_strategies_agree::<Tropical, _>(&gp, &UnitWeights::new(Tropical::new(1)))?;
        assert_strategies_agree::<Tropical, _>(
            &gp,
            &from_fn(|f| Tropical::new(f as u64 % 5 + 1)),
        )?;
        assert_strategies_agree::<TropK<3>, _>(
            &gp,
            &UnitWeights::new(TropK::<3>::single(1)),
        )?;
        assert_strategies_agree::<Sorp, _>(&gp, &VarTags)?;
    }

    /// Counting is not ⊕-idempotent: `semi_naive_eval` must fall back to
    /// naive and therefore behave *identically* — same values and same
    /// iteration count on DAGs, same divergence on cyclic instances.
    #[test]
    fn counting_falls_back_identically(
        n in 4usize..9,
        m in 6usize..20,
        seed in any::<u64>(),
    ) {
        let g = generators::gnm(n, m, &["E"], seed);
        let mut p = programs::transitive_closure();
        let (db, _) = datalog_circuits::datalog::Database::from_graph(&mut p, &g);
        let gp = datalog::ground(&p, &db).unwrap();
        let unit = UnitWeights::new(Counting::new(1));
        let budget = datalog::default_budget(&gp).min(60);
        let naive = datalog::naive_eval::<Counting, _>(&gp, &unit, budget);
        let semi = datalog::semi_naive_eval::<Counting, _>(&gp, &unit, budget);
        prop_assert_eq!(naive.converged, semi.converged);
        prop_assert_eq!(naive.iterations, semi.iterations, "fallback must be naive itself");
        prop_assert_eq!(naive.values, semi.values);
    }
}

/// The `Engine` default (semi-naive) answers exactly like a naive session
/// on Figure 1, across the full battery.
#[test]
fn engine_default_matches_naive_strategy_session() {
    let semi = figure1_engine();
    assert_eq!(semi.eval_strategy(), EvalStrategy::SemiNaive);
    let naive = Engine::builder()
        .program(programs::transitive_closure())
        .graph(&figure1())
        .eval_strategy(EvalStrategy::Naive)
        .build()
        .unwrap();
    for src in 0..6u32 {
        for dst in 0..6u32 {
            let unit = UnitWeights::new(Tropical::new(1));
            let a: Tropical = semi.node_query(src, dst).unwrap().eval(&unit).unwrap();
            let b: Tropical = naive.node_query(src, dst).unwrap().eval(&unit).unwrap();
            assert_eq!(a, b, "({src},{dst})");
            let ap: Sorp = semi.node_query(src, dst).unwrap().eval(&VarTags).unwrap();
            let bp: Sorp = naive.node_query(src, dst).unwrap().eval(&VarTags).unwrap();
            assert_eq!(ap, bp, "({src},{dst})");
        }
    }
}

/// The whole battery above reuses ONE grounding and ONE classification —
/// the facade's core caching contract, asserted by counting `ground()`
/// invocations across many queries, evaluations, and compilations.
#[test]
fn agreement_battery_grounds_once() {
    let engine = figure1_engine();
    assert_agreement::<Bool, _>(&engine, &AllOnes);
    assert_agreement::<Tropical, _>(&engine, &UnitWeights::new(Tropical::new(1)));
    assert_agreement::<Counting, _>(&engine, &AllOnes);
    assert_agreement::<Sorp, _>(&engine, &VarTags);
    let stats = engine.cache_stats();
    assert_eq!(stats.groundings, 1, "{stats:?}");
    assert_eq!(stats.classifications, 1, "{stats:?}");
    // 36 node pairs × 4 batteries, but each derivable fact's circuit is
    // compiled exactly once and served from cache afterwards.
    assert!(stats.circuit_cache_hits > stats.circuits_built, "{stats:?}");
}
