//! Cross-semiring agreement through the `Engine` facade: on the paper's
//! Figure 1 graph, `engine.query(…).eval::<S>(…)` must match both direct
//! `Circuit::eval` of the compiled circuit and `naive_eval` over the same
//! grounded program — for `Bool`, `Tropical`, `Counting` (the instance is a
//! DAG, so counting converges), and `Sorp` — plus property tests that the
//! semi-naive and naive fixpoints compute identical values on random `gnm`
//! graphs, that the **parallel sharded** pipeline (grounding, `par_ico`,
//! parallel semi-naive) is indistinguishable from the sequential one, and
//! that `TropK` satisfies the semiring laws at its boundary parameters
//! (`K = 1`, duplicate weights, `u64::MAX` saturation).

use datalog_circuits::datalog::{self, programs};
use datalog_circuits::graphgen::{generators, LabeledDigraph};
use datalog_circuits::provcirc::prelude::*;
use datalog_circuits::semiring::{prelude::*, properties};
// Selective import: proptest's prelude would shadow `provcirc::Strategy`
// with its generator trait of the same name.
use proptest::{
    any, collection, prop_assert, prop_assert_eq, prop_oneof, proptest, Just, ProptestConfig,
    Strategy as PropStrategy, TestCaseError,
};

/// The paper's Figure 1 graph: s=0, u1=1, u2=2, v1=3, v2=4, t=5. Acyclic.
fn figure1() -> LabeledDigraph {
    let mut g = LabeledDigraph::new(6);
    for (u, v) in [(0, 1), (0, 2), (1, 3), (1, 4), (2, 4), (3, 5), (4, 5)] {
        g.add_edge(u, v, "E");
    }
    g
}

fn figure1_engine() -> Engine {
    Engine::builder()
        .program(programs::transitive_closure())
        .graph(&figure1())
        .build()
        .unwrap()
}

/// Facade evaluation ≡ compiled-circuit evaluation ≡ naive evaluation of
/// the identical grounding, for every node pair and semiring.
fn assert_agreement<S: Semiring, V: Valuation<S> + Sync>(engine: &Engine, valuation: &V) {
    let gp = engine.grounding().unwrap();
    let naive = datalog::naive_eval::<S, _>(gp, valuation, datalog::default_budget(gp));
    assert!(naive.converged, "{} must converge on Figure 1", S::NAME);
    for src in 0..6u32 {
        for dst in 0..6u32 {
            let q = engine.node_query(src, dst).unwrap();
            let via_engine: S = q.eval(valuation).unwrap();
            let via_circuit: S = q
                .circuit(Strategy::GroundedFixpoint)
                .unwrap()
                .circuit
                .eval(valuation);
            let via_naive = match q.fact_index().unwrap() {
                Some(f) => naive.values[f].clone(),
                None => S::zero(),
            };
            assert!(
                via_engine.sr_eq(&via_circuit),
                "{} ({src},{dst}): engine {via_engine:?} vs circuit {via_circuit:?}",
                S::NAME
            );
            assert!(
                via_engine.sr_eq(&via_naive),
                "{} ({src},{dst}): engine {via_engine:?} vs naive {via_naive:?}",
                S::NAME
            );
        }
    }
}

#[test]
fn bool_agreement_on_figure1() {
    assert_agreement::<Bool, _>(&figure1_engine(), &AllOnes);
}

#[test]
fn tropical_agreement_on_figure1() {
    let engine = figure1_engine();
    assert_agreement::<Tropical, _>(&engine, &UnitWeights::new(Tropical::new(1)));
    // Distinct edge weights through the session's edge-fact alignment.
    let weighted =
        FromEdgeWeights::from_fn(engine.edge_facts(), |i| Tropical::new(i as u64 % 4 + 1));
    assert_agreement::<Tropical, _>(&engine, &weighted);
}

#[test]
fn counting_agreement_on_figure1() {
    // Figure 1 is a DAG, so path counting converges: s→t has 3 paths.
    let engine = figure1_engine();
    assert_agreement::<Counting, _>(&engine, &AllOnes);
    let st: Counting = engine.node_query(0, 5).unwrap().eval(&AllOnes).unwrap();
    assert_eq!(st, Counting::new(3));
}

#[test]
fn sorp_agreement_on_figure1() {
    let engine = figure1_engine();
    assert_agreement::<Sorp, _>(&engine, &VarTags);
    // The facade's provenance accessor is the same polynomial.
    for (src, dst) in [(0u32, 5u32), (1, 5), (0, 4)] {
        let q = engine.node_query(src, dst).unwrap();
        let via_eval: Sorp = q.eval(&VarTags).unwrap();
        assert_eq!(q.provenance().unwrap(), via_eval, "({src},{dst})");
    }
    // Paper Figure 1: three source-to-target paths, each a 3-edge monomial.
    let st = engine.node_query(0, 5).unwrap().provenance().unwrap();
    assert_eq!(st.len(), 3);
    assert!(st.monomials().iter().all(|m| m.degree() == 3));
}

/// Naive and semi-naive agree on every value — asserted per semiring so a
/// failure names the algebra that broke.
fn assert_strategies_agree<S: Semiring, V: Valuation<S>>(
    gp: &datalog::GroundedProgram,
    valuation: &V,
) -> Result<(), TestCaseError> {
    let budget = datalog::default_budget(gp);
    let naive = datalog::naive_eval::<S, _>(gp, valuation, budget);
    let semi = datalog::semi_naive_eval::<S, _>(gp, valuation, budget);
    prop_assert_eq!(naive.converged, semi.converged, "{} convergence", S::NAME);
    prop_assert_eq!(naive.values.len(), semi.values.len());
    for (i, (a, b)) in naive.values.iter().zip(&semi.values).enumerate() {
        prop_assert!(
            a.sr_eq(b),
            "{} fact {}: naive {:?} vs semi-naive {:?}",
            S::NAME,
            i,
            a,
            b
        );
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// `EvalOutcome.values` is identical across the two strategies for
    /// Bool, Tropical, TropK and Sorp on random gnm transitive closures
    /// (cycles included — all four are ⊕-idempotent, so the delta path
    /// really runs).
    #[test]
    fn seminaive_matches_naive_on_random_gnm(
        n in 4usize..9,
        m in 6usize..20,
        seed in any::<u64>(),
    ) {
        let g = generators::gnm(n, m, &["E"], seed);
        let mut p = programs::transitive_closure();
        let (db, _) = datalog::Database::from_graph(&mut p, &g);
        let gp = datalog::ground(&p, &db).unwrap();
        assert_strategies_agree::<Bool, _>(&gp, &AllOnes)?;
        assert_strategies_agree::<Tropical, _>(&gp, &UnitWeights::new(Tropical::new(1)))?;
        assert_strategies_agree::<Tropical, _>(
            &gp,
            &from_fn(|f| Tropical::new(f as u64 % 5 + 1)),
        )?;
        assert_strategies_agree::<TropK<3>, _>(
            &gp,
            &UnitWeights::new(TropK::<3>::single(1)),
        )?;
        assert_strategies_agree::<Sorp, _>(&gp, &VarTags)?;
    }

    /// Counting is not ⊕-idempotent: `semi_naive_eval` must fall back to
    /// naive and therefore behave *identically* — same values and same
    /// iteration count on DAGs, same divergence on cyclic instances — and
    /// the outcome must *record* the downgrade as its effective strategy.
    #[test]
    fn counting_falls_back_identically(
        n in 4usize..9,
        m in 6usize..20,
        seed in any::<u64>(),
    ) {
        let g = generators::gnm(n, m, &["E"], seed);
        let mut p = programs::transitive_closure();
        let (db, _) = datalog_circuits::datalog::Database::from_graph(&mut p, &g);
        let gp = datalog::ground(&p, &db).unwrap();
        let unit = UnitWeights::new(Counting::new(1));
        let budget = datalog::default_budget(&gp).min(60);
        let naive = datalog::naive_eval::<Counting, _>(&gp, &unit, budget);
        let semi = datalog::semi_naive_eval::<Counting, _>(&gp, &unit, budget);
        prop_assert_eq!(naive.converged, semi.converged);
        prop_assert_eq!(naive.iterations, semi.iterations, "fallback must be naive itself");
        prop_assert_eq!(naive.values, semi.values);
        prop_assert_eq!(naive.strategy, EvalStrategy::Naive);
        prop_assert_eq!(
            semi.strategy,
            EvalStrategy::Naive,
            "the SemiNaive request must record its effective (fallen-back) strategy"
        );
        // Same downgrade through the parallel dispatch point.
        let par = datalog::par_eval_with_strategy::<Counting, _>(
            EvalStrategy::SemiNaive, &gp, &unit, budget, 4,
        );
        prop_assert_eq!(par.strategy, EvalStrategy::Naive);
        prop_assert_eq!(par.iterations, naive.iterations);
        prop_assert_eq!(par.values, naive.values);
    }

    /// The sharded pipeline is indistinguishable from the sequential one:
    /// `par_ground` produces a bit-identical `GroundedProgram` (same
    /// `FactId` order), `par_ico` equals `ico`, parallel naive equals
    /// naive (values *and* iterations), and parallel semi-naive reaches
    /// the same values — across Bool/Tropical/TropK/Sorp, on programs
    /// whose recursive atom sits at different body positions.
    #[test]
    fn parallel_pipeline_matches_sequential(
        n in 4usize..9,
        m in 6usize..20,
        seed in any::<u64>(),
        threads in 2usize..9,
        which in 0usize..3,
    ) {
        let g = generators::gnm(n, m, &["E"], seed);
        let mut p = match which {
            0 => programs::transitive_closure(),
            // Non-linear TC: two IDB atoms — delta positions 0 and 1.
            1 => datalog::parse_program(
                "T(X,Y) :- E(X,Y).\nT(X,Y) :- T(X,Z), T(Z,Y).",
            ).unwrap(),
            // Example 4.2: the recursive atom is *second* in the body.
            _ => programs::bounded_example(),
        };
        let (mut db, _) = datalog::Database::from_graph(&mut p, &g);
        if let Some(a) = p.preds.get("A") {
            let v0 = db.node_const(0).unwrap();
            db.insert(a, vec![v0]);
        }
        let gp = datalog::ground(&p, &db).unwrap();
        let gp_par = datalog::par_ground(&p, &db, threads).unwrap();
        prop_assert_eq!(&gp.idb_facts, &gp_par.idb_facts, "FactId order must be bit-identical");
        prop_assert_eq!(&gp.rules, &gp_par.rules, "grounded-rule order must be bit-identical");

        let budget = datalog::default_budget(&gp);
        assert_par_eval_agrees::<Bool, _>(&gp, &AllOnes, budget, threads)?;
        assert_par_eval_agrees::<Tropical, _>(
            &gp, &UnitWeights::new(Tropical::new(1)), budget, threads,
        )?;
        assert_par_eval_agrees::<TropK<3>, _>(
            &gp, &UnitWeights::new(TropK::<3>::single(1)), budget, threads,
        )?;
        assert_par_eval_agrees::<Sorp, _>(&gp, &VarTags, budget, threads)?;
    }

    /// `TropK` semiring laws at the boundary parameters: `K = 1` (the
    /// degenerate tropical case), duplicate weights (the distinct-value
    /// merge), and `u64::MAX` (saturating `⊗`).
    #[test]
    fn tropk_laws_hold_at_boundary_parameters(
        a in tropk_weights(),
        b in tropk_weights(),
        c in tropk_weights(),
    ) {
        check_tropk_laws::<1>(&a, &b, &c)?;
        check_tropk_laws::<2>(&a, &b, &c)?;
        check_tropk_laws::<3>(&a, &b, &c)?;
    }
}

/// Weight vectors biased toward the interesting boundaries: duplicates
/// (small range) and saturation (`u64::MAX` and neighbors).
fn tropk_weights() -> impl PropStrategy<Value = Vec<u64>> {
    collection::vec(
        prop_oneof![
            4 => 0u64..6,
            1 => Just(u64::MAX),
            1 => Just(u64::MAX - 1),
        ],
        0..5,
    )
}

fn check_tropk_laws<const K: usize>(a: &[u64], b: &[u64], c: &[u64]) -> Result<(), TestCaseError> {
    let (a, b, c) = (
        TropK::<K>::from_weights(a.to_vec()),
        TropK::<K>::from_weights(b.to_vec()),
        TropK::<K>::from_weights(c.to_vec()),
    );
    if let Err(e) = properties::check_semiring_laws(&a, &b, &c) {
        return Err(TestCaseError::fail(format!("K={K}: {e}")));
    }
    if let Err(e) = properties::check_add_idempotent(&a) {
        return Err(TestCaseError::fail(format!("K={K}: {e}")));
    }
    // Saturating ⊗ stays within the invariant: sorted, distinct, ≤ K.
    let prod = a.mul(&b);
    prop_assert!(prod.weights().len() <= K, "K={}: {:?}", K, prod);
    prop_assert!(
        prod.weights().windows(2).all(|w| w[0] < w[1]),
        "K={}: {:?} not strictly increasing",
        K,
        prod
    );
    Ok(())
}

/// Parallel naive must equal naive exactly (values, iterations,
/// convergence); parallel semi-naive must reach the same values and
/// convergence verdict (its round schedule may count iterations
/// differently).
fn assert_par_eval_agrees<S: Semiring, V: Valuation<S> + Sync>(
    gp: &datalog::GroundedProgram,
    valuation: &V,
    budget: usize,
    threads: usize,
) -> Result<(), TestCaseError> {
    let state = vec![S::zero(); gp.num_idb_facts()];
    let seq_ico = datalog::ico::<S, _>(gp, valuation, &state);
    let par_ico = datalog::par_ico::<S, _>(gp, valuation, &state, threads);
    for (i, (a, b)) in seq_ico.iter().zip(&par_ico).enumerate() {
        prop_assert!(
            a.sr_eq(b),
            "{} par_ico fact {}: {:?} vs {:?}",
            S::NAME,
            i,
            a,
            b
        );
    }
    let naive = datalog::naive_eval::<S, _>(gp, valuation, budget);
    let par_naive = datalog::par_naive_eval::<S, _>(gp, valuation, budget, threads);
    prop_assert_eq!(
        naive.converged,
        par_naive.converged,
        "{} naive convergence",
        S::NAME
    );
    prop_assert_eq!(
        naive.iterations,
        par_naive.iterations,
        "{} naive iterations",
        S::NAME
    );
    for (i, (a, b)) in naive.values.iter().zip(&par_naive.values).enumerate() {
        prop_assert!(
            a.sr_eq(b),
            "{} naive fact {}: {:?} vs {:?}",
            S::NAME,
            i,
            a,
            b
        );
    }
    let semi = datalog::semi_naive_eval::<S, _>(gp, valuation, budget);
    let par_semi = datalog::par_semi_naive_eval::<S, _>(gp, valuation, budget, threads);
    prop_assert_eq!(
        semi.converged,
        par_semi.converged,
        "{} semi convergence",
        S::NAME
    );
    for (i, (a, b)) in semi.values.iter().zip(&par_semi.values).enumerate() {
        prop_assert!(
            a.sr_eq(b),
            "{} semi fact {}: {:?} vs {:?}",
            S::NAME,
            i,
            a,
            b
        );
    }
    Ok(())
}

/// The `Engine` default (semi-naive) answers exactly like a naive session
/// on Figure 1, across the full battery.
#[test]
fn engine_default_matches_naive_strategy_session() {
    let semi = figure1_engine();
    assert_eq!(semi.eval_strategy(), EvalStrategy::SemiNaive);
    let naive = Engine::builder()
        .program(programs::transitive_closure())
        .graph(&figure1())
        .eval_strategy(EvalStrategy::Naive)
        .build()
        .unwrap();
    for src in 0..6u32 {
        for dst in 0..6u32 {
            let unit = UnitWeights::new(Tropical::new(1));
            let a: Tropical = semi.node_query(src, dst).unwrap().eval(&unit).unwrap();
            let b: Tropical = naive.node_query(src, dst).unwrap().eval(&unit).unwrap();
            assert_eq!(a, b, "({src},{dst})");
            let ap: Sorp = semi.node_query(src, dst).unwrap().eval(&VarTags).unwrap();
            let bp: Sorp = naive.node_query(src, dst).unwrap().eval(&VarTags).unwrap();
            assert_eq!(ap, bp, "({src},{dst})");
        }
    }
}

/// Build the three-pipeline engine triple over one graph: the
/// materialized engine is the oracle, the fused and magic engines are
/// the systems under test. A finite eval budget keeps the deliberate
/// counting divergences cheap.
fn pipeline_triple(g: &LabeledDigraph, threads: usize) -> (Engine, Engine, Engine) {
    let mk = |p: Pipeline| {
        Engine::builder()
            .program(programs::transitive_closure())
            .graph(g)
            .parallelism(threads)
            .pipeline(p)
            .eval_budget(60)
            .build()
            .unwrap()
    };
    (
        mk(Pipeline::Materialized),
        mk(Pipeline::Fused),
        mk(Pipeline::Magic),
    )
}

/// Every node pair, one semiring: the alternate pipeline must agree with
/// the materialized oracle on both the value and convergence. The one
/// sanctioned asymmetry: a *demand-driven* (magic) evaluation may
/// converge where the full fixpoint diverges, when the query cone
/// excludes the cycle — `cone_may_converge` whitelists exactly that
/// (the cone-contains-the-cycle direction is pinned by the corpus case
/// `tc_cycle_counting_diverges`).
fn assert_pipeline_agrees<S: Semiring, V: Valuation<S> + Sync>(
    oracle: &Engine,
    alt: &Engine,
    nodes: usize,
    valuation: &V,
    label: &str,
    cone_may_converge: bool,
    stale_may_diverge: bool,
) -> Result<(), TestCaseError> {
    for src in 0..nodes as u32 {
        for dst in 0..nodes as u32 {
            let a: Result<S, _> = oracle.node_query(src, dst).unwrap().eval(valuation);
            let b: Result<S, _> = alt.node_query(src, dst).unwrap().eval(valuation);
            match (&a, &b) {
                (Ok(x), Ok(y)) => {
                    prop_assert!(x.sr_eq(y), "{label} ({src},{dst}): oracle {x:?} vs {y:?}")
                }
                (Err(Error::Diverged { .. }), Err(Error::Diverged { .. })) => {}
                (Err(Error::Diverged { .. }), Ok(_)) if cone_may_converge => {}
                // After a retraction, the oracle's incrementally
                // maintained grounding can keep a now-unsupported goal
                // fact; under global divergence the oracle then errors
                // on a goal that a fresh grounding (fused/magic
                // re-derive per call) doesn't even contain and answers
                // with 0. Only that direction, only the zero value.
                (Err(Error::Diverged { .. }), Ok(y))
                    if stale_may_diverge && y.sr_eq(&S::zero()) => {}
                _ => prop_assert!(false, "{label} ({src},{dst}): oracle {a:?} vs {b:?}"),
            }
        }
    }
    Ok(())
}

/// Run the full semiring battery of one pipeline against the oracle.
fn assert_pipeline_battery(
    oracle: &Engine,
    alt: &Engine,
    nodes: usize,
    label: &str,
    cone_may_converge: bool,
    stale_may_diverge: bool,
) -> Result<(), TestCaseError> {
    assert_pipeline_agrees::<Bool, _>(oracle, alt, nodes, &AllOnes, label, false, false)?;
    assert_pipeline_agrees::<Tropical, _>(
        oracle,
        alt,
        nodes,
        &UnitWeights::new(Tropical::new(1)),
        label,
        false,
        false,
    )?;
    assert_pipeline_agrees::<TropK<3>, _>(
        oracle,
        alt,
        nodes,
        &UnitWeights::new(TropK::<3>::single(1)),
        label,
        false,
        false,
    )?;
    assert_pipeline_agrees::<Sorp, _>(oracle, alt, nodes, &VarTags, label, false, false)?;
    // Counting is the non-idempotent stressor: divergence behaviour is
    // part of the contract (see the whitelists above).
    assert_pipeline_agrees::<Counting, _>(
        oracle,
        alt,
        nodes,
        &AllOnes,
        label,
        cone_may_converge,
        stale_may_diverge,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// ISSUE 9 cross-path oracle: on random gnm graphs (cycles included),
    /// the fused streaming pipeline and the magic demand-driven pipeline
    /// answer point queries bit-identically to the materialized oracle —
    /// values *and* convergence — across Bool/Tropical/TropK₃/Sorp/
    /// Counting, at parallelism 1 and 4, and the agreement survives a
    /// round of incremental `insert_facts`/`retract_facts` interleaved
    /// between query batteries.
    #[test]
    fn fused_and_magic_pipelines_match_materialized(
        n in 4usize..8,
        m in 6usize..16,
        seed in any::<u64>(),
        threads in prop_oneof![Just(1usize), Just(4usize)],
    ) {
        let g = generators::gnm(n, m, &["E"], seed);
        let (mut oracle, mut fused, mut magic) = pipeline_triple(&g, threads);

        // The fused stream must reproduce the materialized grounding's
        // fact list bit-for-bit (same FactIds, same interning order) —
        // the invariant that makes value comparison meaningful at all.
        let fused_out = fused
            .fused_fixpoint::<Tropical, _>(&UnitWeights::new(Tropical::new(1)))
            .unwrap();
        prop_assert_eq!(
            &fused_out.gp.idb_facts,
            &oracle.grounding().unwrap().idb_facts,
            "fused fact discovery order diverged from the materialized grounder"
        );

        assert_pipeline_battery(&oracle, &fused, n, "fused", false, false)?;
        assert_pipeline_battery(&oracle, &magic, n, "magic", true, false)?;

        // Interleave incremental writes: retract a real edge, insert a
        // fresh one (new constant included), identically on all three
        // engines, then re-run the battery. The fused and magic paths
        // re-derive from the maintained database, the oracle from its
        // incrementally-maintained grounding — they must still agree.
        let &(u, v, _) = g.edges().first().expect("gnm(n>=4, m>=6) has edges");
        let (du, dv) = (format!("v{u}"), format!("v{v}"));
        let retraction: [(&str, &[&str]); 1] = [("E", &[du.as_str(), dv.as_str()])];
        let insertion: [(&str, &[&str]); 2] =
            [("E", &["v0", "w0"]), ("E", &["w0", "v1"])];
        for engine in [&mut oracle, &mut fused, &mut magic] {
            engine.retract_facts(&retraction).unwrap();
            engine.insert_facts(&insertion).unwrap();
        }
        assert_pipeline_battery(&oracle, &fused, n, "fused after writes", false, true)?;
        assert_pipeline_battery(&oracle, &magic, n, "magic after writes", true, true)?;
    }
}

/// The whole battery above reuses ONE grounding and ONE classification —
/// the facade's core caching contract, asserted by counting `ground()`
/// invocations across many queries, evaluations, and compilations.
#[test]
fn agreement_battery_grounds_once() {
    let engine = figure1_engine();
    assert_agreement::<Bool, _>(&engine, &AllOnes);
    assert_agreement::<Tropical, _>(&engine, &UnitWeights::new(Tropical::new(1)));
    assert_agreement::<Counting, _>(&engine, &AllOnes);
    assert_agreement::<Sorp, _>(&engine, &VarTags);
    let stats = engine.cache_stats();
    assert_eq!(stats.groundings, 1, "{stats:?}");
    assert_eq!(stats.classifications, 1, "{stats:?}");
    // 36 node pairs × 4 batteries, but each derivable fact's circuit is
    // compiled exactly once and served from cache afterwards.
    assert!(stats.circuit_cache_hits > stats.circuits_built, "{stats:?}");
}
