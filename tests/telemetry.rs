//! Integration tests of the telemetry subsystem: the JSON exporter shape,
//! the disabled-path bit-identity guarantee, per-shard parallel stats, and
//! the `DATALOG_METRICS` environment default.
//!
//! Every engine in this file sets `.telemetry(..)` explicitly (except the
//! env-default test, which owns the variable), so the tests stay
//! order-independent even though `DATALOG_METRICS` is process-global.

use datalog_circuits::datalog::{self, programs};
use datalog_circuits::graphgen::generators;
use datalog_circuits::provcirc::prelude::*;
use datalog_circuits::semiring::prelude::*;
use datalog_circuits::semiring::AllOnes;
use datalog_circuits::telemetry::Stage;

fn tc_engine(parallelism: usize, telemetry: bool) -> Engine {
    Engine::builder()
        .program(programs::transitive_closure())
        .graph(&generators::gnm(12, 40, &["E"], 3))
        .parallelism(parallelism)
        .telemetry(telemetry)
        .build()
        .unwrap()
}

/// Braces and brackets balance outside of string literals — the exporter
/// is hand-rolled, so the shape test actually walks the bytes.
fn assert_balanced_json(json: &str) {
    let (mut depth, mut in_str, mut escape) = (0i64, false, false);
    for c in json.chars() {
        if in_str {
            match (escape, c) {
                (true, _) => escape = false,
                (false, '\\') => escape = true,
                (false, '"') => in_str = false,
                _ => {}
            }
            continue;
        }
        match c {
            '"' => in_str = true,
            '{' | '[' => depth += 1,
            '}' | ']' => {
                depth -= 1;
                assert!(depth >= 0, "unbalanced close in exporter output");
            }
            _ => {}
        }
    }
    assert!(!in_str, "unterminated string in exporter output");
    assert_eq!(depth, 0, "unbalanced braces in exporter output");
}

#[test]
fn json_export_covers_every_pipeline_stage() {
    let engine = tc_engine(1, true);
    let q = engine.query("T", &["v0", "v5"]).unwrap();
    q.eval::<Bool, _>(&AllOnes).unwrap();
    q.circuit(Strategy::GroundedFixpoint).unwrap();
    q.provenance().unwrap();
    let json = engine.metrics_report().to_json();
    assert_balanced_json(&json);
    assert!(
        json.contains("\"schema\": \"pipeline_metrics_v1\""),
        "{json}"
    );
    assert!(json.contains("\"enabled\": true"), "{json}");
    for stage in Stage::ALL {
        assert!(
            json.contains(&format!("\"stage\": \"{}\"", stage.name())),
            "stage {} missing from exporter output:\n{json}",
            stage.name()
        );
    }
    // The round series carry the per-round frontier sizes.
    for key in ["\"rounds\"", "\"frontier\"", "\"delta\"", "\"worklist\""] {
        assert!(json.contains(key), "{key} missing from exporter output");
    }
    // Cache events surface alongside the spans.
    assert!(json.contains("\"groundings\": 1"), "{json}");
    assert!(json.contains("\"provenance_runs\": 1"), "{json}");
}

#[test]
fn human_report_names_grounding_and_eval_separately() {
    let engine = tc_engine(1, true);
    engine
        .query("T", &["v0", "v5"])
        .unwrap()
        .eval::<Bool, _>(&AllOnes)
        .unwrap();
    let table = engine.metrics_report().to_string();
    for name in ["ground_phase1", "ground_phase2", "eval"] {
        assert!(table.contains(name), "{name} missing from:\n{table}");
    }
}

#[test]
fn disabled_telemetry_records_nothing_and_stays_bit_identical() {
    let seq = tc_engine(1, false);
    let par = tc_engine(4, false);
    // Bit-identity of the disabled path: same FactId order, same rules,
    // same answers at any thread count (the PR-5 guarantee, untouched).
    let gs = seq.grounding().unwrap();
    let gp = par.grounding().unwrap();
    assert_eq!(gs.idb_facts, gp.idb_facts);
    assert_eq!(gs.rules, gp.rules);
    let unit = UnitWeights::new(Tropical::new(1));
    for dst in 1..12u32 {
        let a: Tropical = seq.node_query(0, dst).unwrap().eval(&unit).unwrap();
        let b: Tropical = par.node_query(0, dst).unwrap().eval(&unit).unwrap();
        assert_eq!(a, b, "dst={dst}");
    }
    // Nothing measurable was recorded: no spans, no rounds, no shards.
    for engine in [&seq, &par] {
        assert!(!engine.telemetry_enabled());
        let report = engine.metrics_report();
        assert!(!report.enabled);
        assert!(report
            .stages
            .iter()
            .all(|s| s.calls == 0 && s.total_nanos == 0));
        assert!(report.rounds.is_empty());
        assert!(report.shards.is_empty());
        // The cache-discipline counters still work — they are the
        // compatibility surface of `cache_stats()`.
        assert_eq!(engine.cache_stats().groundings, 1);
    }
}

#[test]
fn shard_stats_are_sane_at_parallelism_4() {
    let engine = Engine::builder()
        .program(programs::transitive_closure())
        .graph(&generators::gnm(30, 120, &["E"], 7))
        .parallelism(4)
        .telemetry(true)
        .build()
        .unwrap();
    engine
        .query("T", &["v0", "v5"])
        .unwrap()
        .eval::<Bool, _>(&AllOnes)
        .unwrap();
    let report = engine.metrics_report();
    assert!(!report.shards.is_empty(), "parallel run reported no shards");
    let mut saw_ground = false;
    for ((stage, worker), agg) in &report.shards {
        assert!(*worker < 4, "worker id {worker} out of range");
        assert!(agg.tasks > 0, "worker {worker} reported zero tasks");
        assert!(agg.calls > 0, "worker {worker} reported zero calls");
        saw_ground |= matches!(stage, Stage::GroundPhase1 | Stage::GroundPhase2);
    }
    assert!(saw_ground, "grounding shards missing: {:?}", report.shards);
    let produced: u64 = report.shards.iter().map(|(_, a)| a.produced).sum();
    assert!(produced > 0, "no shard produced anything");
}

#[test]
fn rule_firings_expose_the_strategy_independent_work_measure() {
    let p = programs::transitive_closure();
    let g = generators::gnm(10, 30, &["E"], 5);
    let mut p2 = p.clone();
    let (db, _) = datalog::Database::from_graph(&mut p2, &g);
    let gp = datalog::ground(&p2, &db).unwrap();
    let budget = datalog::default_budget(&gp);
    let naive = datalog::naive_eval::<Bool, _>(&gp, &AllOnes, budget);
    let semi = datalog::semi_naive_eval::<Bool, _>(&gp, &AllOnes, budget);
    assert!(naive.converged && semi.converged);
    // Naive fires every grounded rule once per ICO application.
    assert_eq!(naive.rule_firings, naive.iterations * gp.rules.len());
    // Semi-naive fires at least the initial full pass, and the whole point
    // of the strategy is firing (far) fewer rules overall.
    assert!(semi.rule_firings >= gp.rules.len());
    assert!(
        semi.rule_firings <= naive.rule_firings,
        "semi-naive fired more rules ({}) than naive ({})",
        semi.rule_firings,
        naive.rule_firings
    );
}

#[test]
fn datalog_metrics_env_is_the_default_and_explicit_wins() {
    std::env::set_var("DATALOG_METRICS", "1");
    let defaulted = Engine::builder()
        .program(programs::transitive_closure())
        .graph(&generators::path(2, "E"))
        .build()
        .unwrap();
    assert!(defaulted.telemetry_enabled());
    let explicit_off = Engine::builder()
        .program(programs::transitive_closure())
        .graph(&generators::path(2, "E"))
        .telemetry(false)
        .build()
        .unwrap();
    assert!(!explicit_off.telemetry_enabled());
    std::env::set_var("DATALOG_METRICS", "0");
    let off = Engine::builder()
        .program(programs::transitive_closure())
        .graph(&generators::path(2, "E"))
        .build()
        .unwrap();
    assert!(!off.telemetry_enabled());
    std::env::remove_var("DATALOG_METRICS");
}
