//! Integration tests for the serving subsystem: a real server on an
//! ephemeral port, driven over real sockets by the protocol client.
//!
//! The acceptance bar (ISSUE 7): 8 concurrent readers over one snapshot
//! return bit-identical results to sequential `Engine` evaluation, a
//! `BATCH` of (Bool, Tropical, Counting) queries grounds exactly once
//! (asserted via the METRICS cache counters), and every protocol-error
//! case leaves the server accepting new connections.

use datalog_circuits::provcirc::Engine;
use datalog_circuits::semiring::{AllOnes, Bool, Counting, Tropical, UnitWeights};
use datalog_circuits::server::client::Client;
use datalog_circuits::server::{Server, ServerConfig, ServerHandle};

const TC: &str = "T(X,Y) :- E(X,Y).\nT(X,Y) :- T(X,Z), E(Z,Y).";

/// A diamond-plus-tail edge set: two distinct v0→v2 paths, then a tail.
/// Counting(T(v0,v3)) = 2, Tropical = 3 — values a wrong merge would
/// visibly corrupt.
const EDGES: &[(&str, &str)] = &[
    ("v0", "v1"),
    ("v1", "v2"),
    ("v0", "a"),
    ("a", "v2"),
    ("v2", "v3"),
];

fn boot(workers: usize) -> ServerHandle {
    Server::bind(ServerConfig::default().workers(workers)).expect("bind ephemeral server")
}

fn connect(handle: &ServerHandle) -> Client {
    Client::connect(handle.addr()).expect("connect to test server")
}

fn fact_lines() -> Vec<String> {
    EDGES.iter().map(|(u, v)| format!("E {u} {v}")).collect()
}

/// Open a session and load the diamond workload; returns the session id.
fn load_workload(c: &mut Client) -> u64 {
    let open = c.roundtrip("SESSION OPEN").unwrap();
    let id: u64 = open.strip_prefix("OK SESSION ").unwrap().parse().unwrap();
    let program: Vec<&str> = TC.lines().collect();
    let reply = c.send_block("LOAD PROGRAM", &program).unwrap();
    assert_eq!(reply.status, "OK PROGRAM 2");
    let facts = fact_lines();
    let fact_refs: Vec<&str> = facts.iter().map(String::as_str).collect();
    let reply = c.send_block("LOAD FACTS", &fact_refs).unwrap();
    assert_eq!(reply.status, "OK FACTS 5");
    id
}

/// The same workload evaluated sequentially, straight through the
/// `Engine` — the oracle the wire answers must match bit-for-bit.
fn sequential_oracle() -> (bool, u64, u64) {
    let mut builder = Engine::builder().program_text(TC);
    for (u, v) in EDGES {
        builder = builder.fact("E", &[u, v]);
    }
    let engine = builder.parallelism(1).build().unwrap();
    let q = engine.query("T", &["v0", "v3"]).unwrap();
    let b: Bool = q.eval(&AllOnes).unwrap();
    let t: Tropical = q.eval(&UnitWeights::new(Tropical::new(1))).unwrap();
    let c: Counting = q.eval(&AllOnes).unwrap();
    (b.0, t.finite().unwrap(), c.0)
}

#[test]
fn happy_path_full_command_set() {
    let handle = boot(2);
    let mut c = connect(&handle);
    assert_eq!(c.roundtrip("PING").unwrap(), "OK PONG");
    load_workload(&mut c);

    let (ob, ot, oc) = sequential_oracle();
    assert_eq!(
        c.roundtrip("QUERY T v0 v3 SEMIRING bool").unwrap(),
        format!("OK VALUE {ob}")
    );
    assert_eq!(
        c.roundtrip("QUERY T v0 v3 SEMIRING tropical VALUATION unit:1")
            .unwrap(),
        format!("OK VALUE {ot}")
    );
    assert_eq!(
        c.roundtrip("QUERY T v0 v3 SEMIRING counting").unwrap(),
        format!("OK VALUE {oc}")
    );
    // The wider semiring menu answers too.
    assert_eq!(
        c.roundtrip("QUERY T v0 v3 SEMIRING fuzzy VALUATION unit:0.5")
            .unwrap(),
        "OK VALUE 0.5"
    );
    assert_eq!(
        c.roundtrip("QUERY T v0 v3 SEMIRING bottleneck VALUATION unit:7")
            .unwrap(),
        "OK VALUE 7"
    );
    // Underivable ⇒ semiring zero, not an error.
    assert_eq!(
        c.roundtrip("QUERY T v3 v0 SEMIRING bool").unwrap(),
        "OK VALUE false"
    );
    assert_eq!(
        c.roundtrip("QUERY T v3 v0 SEMIRING tropical").unwrap(),
        "OK VALUE inf"
    );

    let metrics = c.run_line("METRICS").unwrap();
    assert!(metrics.status.starts_with("OK METRICS "));
    let json = metrics.body.join("\n");
    assert!(json.contains("\"schema\": \"pipeline_metrics_v1\""));

    let close = c.roundtrip("SESSION CLOSE").unwrap();
    assert!(close.starts_with("OK CLOSED "));
    assert_eq!(c.roundtrip("QUIT").unwrap(), "OK BYE");

    handle.shutdown();
    handle.wait().unwrap();
}

#[test]
fn batch_of_three_semirings_grounds_exactly_once() {
    let handle = boot(2);
    let mut c = connect(&handle);
    load_workload(&mut c);

    let (ob, ot, oc) = sequential_oracle();
    let reply = c
        .send_block(
            "BATCH",
            &[
                "QUERY T v0 v3 SEMIRING bool",
                "QUERY T v0 v3 SEMIRING tropical VALUATION unit:1",
                "QUERY T v0 v3 SEMIRING counting",
            ],
        )
        .unwrap();
    assert_eq!(reply.status, "OK BATCH 3");
    assert_eq!(reply.body[0], format!("0 OK {ob}"));
    assert_eq!(reply.body[1], format!("1 OK {ot}"));
    assert_eq!(reply.body[2], format!("2 OK {oc}"));

    // The acceptance assertion: one LOAD FACTS + a three-semiring batch
    // grounds exactly once. The METRICS cache counters are cumulative
    // across the session's engine rebuilds, so this pins the whole
    // lifecycle, not just the batch.
    let metrics = c.run_line("METRICS").unwrap();
    let json = metrics.body.join("\n");
    assert!(
        json.contains("\"groundings\": 1"),
        "expected exactly one grounding, got: {json}"
    );
    assert!(json.contains("\"batches_served\": 1"), "{json}");
    assert!(json.contains("\"batch_queries\": 3"), "{json}");

    handle.shutdown();
    handle.wait().unwrap();
}

#[test]
fn protocol_errors_never_kill_the_server() {
    let handle = boot(2);
    let mut c = connect(&handle);

    // Errors before any session exists.
    let cases: &[(&str, &str)] = &[
        ("FROBNICATE", "ERR UNKNOWN-COMMAND"),
        ("QUERY T v0 SEMIRING bool", "ERR NO-SESSION"),
        ("SESSION ATTACH 99999", "ERR BAD-SESSION"),
        ("SESSION CLOSE", "ERR NO-SESSION"),
        ("METRICS", "ERR NO-SESSION"),
    ];
    for (cmd, prefix) in cases {
        let status = c.roundtrip(cmd).unwrap();
        assert!(status.starts_with(prefix), "{cmd} → {status}");
        // The connection survives every error.
        assert_eq!(c.roundtrip("PING").unwrap(), "OK PONG", "after {cmd}");
    }

    // Errors with a session attached.
    c.roundtrip("SESSION OPEN").unwrap();
    let fact_refs = fact_lines();
    let fact_refs: Vec<&str> = fact_refs.iter().map(String::as_str).collect();
    let status = c.send_block("LOAD FACTS", &fact_refs).unwrap().status;
    assert!(status.starts_with("ERR NO-PROGRAM"), "{status}");
    let status = c
        .send_block("LOAD PROGRAM", &["T(X,Y) :- "])
        .unwrap()
        .status;
    assert!(status.starts_with("ERR PARSE"), "{status}");
    let program: Vec<&str> = TC.lines().collect();
    c.send_block("LOAD PROGRAM", &program).unwrap();
    c.send_block("LOAD FACTS", &fact_refs).unwrap();
    let status = c.roundtrip("QUERY T v0 v3 SEMIRING madeup").unwrap();
    assert!(status.starts_with("ERR SEMIRING"), "{status}");
    let status = c
        .roundtrip("QUERY T v0 v3 SEMIRING bool VALUATION unit:2")
        .unwrap();
    assert!(status.starts_with("ERR VALUATION"), "{status}");
    let status = c.roundtrip("QUERY Nope v0 SEMIRING bool").unwrap();
    assert!(status.starts_with("ERR QUERY"), "{status}");

    // Oversized line: drained, reported, connection still usable.
    let oversized = "A".repeat(70_000);
    let status = c.roundtrip(&oversized).unwrap();
    assert!(status.starts_with("ERR TOOLONG"), "{status}");
    assert_eq!(c.roundtrip("PING").unwrap(), "OK PONG");
    assert_eq!(
        c.roundtrip("QUERY T v0 v3 SEMIRING bool").unwrap(),
        "OK VALUE true"
    );

    // And after all of that, a *fresh* connection still gets served.
    let mut fresh = connect(&handle);
    assert_eq!(fresh.roundtrip("PING").unwrap(), "OK PONG");
    load_workload(&mut fresh);
    assert_eq!(
        fresh.roundtrip("QUERY T v0 v3 SEMIRING bool").unwrap(),
        "OK VALUE true"
    );

    handle.shutdown();
    handle.wait().unwrap();
}

/// ISSUE 9: the `PIPELINE` clause routes point queries through the fused
/// streaming evaluator or the magic-set rewrite, and both must answer
/// byte-identically to the default materialized path over the wire.
#[test]
fn pipeline_clause_answers_match_materialized_over_the_wire() {
    let handle = boot(2);
    let mut c = connect(&handle);
    load_workload(&mut c);

    let (ob, ot, oc) = sequential_oracle();
    for pipe in ["fused", "magic"] {
        assert_eq!(
            c.roundtrip(&format!("QUERY T v0 v3 SEMIRING bool PIPELINE {pipe}"))
                .unwrap(),
            format!("OK VALUE {ob}"),
            "pipeline {pipe}"
        );
        assert_eq!(
            c.roundtrip(&format!(
                "QUERY T v0 v3 SEMIRING tropical VALUATION unit:1 PIPELINE {pipe}"
            ))
            .unwrap(),
            format!("OK VALUE {ot}"),
            "pipeline {pipe}"
        );
        assert_eq!(
            c.roundtrip(&format!("QUERY T v0 v3 SEMIRING counting PIPELINE {pipe}"))
                .unwrap(),
            format!("OK VALUE {oc}"),
            "pipeline {pipe}"
        );
        // Underivable goals render the semiring zero on every route.
        assert_eq!(
            c.roundtrip(&format!("QUERY T v3 v0 SEMIRING bool PIPELINE {pipe}"))
                .unwrap(),
            "OK VALUE false",
            "pipeline {pipe}"
        );
    }

    // A mixed batch groups by (semiring, valuation, pipeline) and the
    // answers still line up item-for-item.
    let reply = c
        .send_block(
            "BATCH",
            &[
                "QUERY T v0 v3 SEMIRING counting",
                "QUERY T v0 v3 SEMIRING counting PIPELINE fused",
                "QUERY T v0 v3 SEMIRING counting PIPELINE magic",
            ],
        )
        .unwrap();
    assert_eq!(reply.status, "OK BATCH 3");
    assert_eq!(reply.body[0], format!("0 OK {oc}"));
    assert_eq!(reply.body[1], format!("1 OK {oc}"));
    assert_eq!(reply.body[2], format!("2 OK {oc}"));

    let status = c
        .roundtrip("QUERY T v0 v3 SEMIRING bool PIPELINE warp")
        .unwrap();
    assert!(status.starts_with("ERR QUERY"), "{status}");

    handle.shutdown();
    handle.wait().unwrap();
}

#[test]
fn mid_batch_error_evaluates_the_rest() {
    let handle = boot(2);
    let mut c = connect(&handle);
    load_workload(&mut c);

    let reply = c
        .send_block(
            "BATCH",
            &[
                "QUERY T v0 v3 SEMIRING tropical VALUATION unit:1",
                "QUERY T v0 v3",                   // malformed: no SEMIRING
                "QUERY Nope v0 SEMIRING bool",     // unknown predicate
                "QUERY T v0 v3 SEMIRING counting", // still evaluates
            ],
        )
        .unwrap();
    assert_eq!(reply.status, "OK BATCH 4");
    assert_eq!(reply.body[0], "0 OK 3");
    assert!(reply.body[1].starts_with("1 ERR QUERY"), "{:?}", reply.body);
    assert!(reply.body[2].starts_with("2 ERR QUERY"), "{:?}", reply.body);
    assert_eq!(reply.body[3], "3 OK 2");

    // The connection and the session both survive a mid-batch error.
    assert_eq!(
        c.roundtrip("QUERY T v0 v3 SEMIRING bool").unwrap(),
        "OK VALUE true"
    );

    handle.shutdown();
    handle.wait().unwrap();
}

#[test]
fn concurrent_sessions_are_isolated() {
    let handle = boot(4);

    // Session 1: the diamond workload.
    let mut c1 = connect(&handle);
    load_workload(&mut c1);

    // Session 2: a different program (single-hop only) over the same
    // fact shapes — its answers must not leak from session 1.
    let mut c2 = connect(&handle);
    c2.roundtrip("SESSION OPEN").unwrap();
    c2.send_block("LOAD PROGRAM", &["T(X,Y) :- E(X,Y)."])
        .unwrap();
    let facts = fact_lines();
    let fact_refs: Vec<&str> = facts.iter().map(String::as_str).collect();
    c2.send_block("LOAD FACTS", &fact_refs).unwrap();

    assert_eq!(handle.registry().len(), 2);
    // Transitive fact: derivable in session 1, not in session 2.
    assert_eq!(
        c1.roundtrip("QUERY T v0 v3 SEMIRING bool").unwrap(),
        "OK VALUE true"
    );
    assert_eq!(
        c2.roundtrip("QUERY T v0 v3 SEMIRING bool").unwrap(),
        "OK VALUE false"
    );
    assert!(c1
        .roundtrip("SESSION CLOSE")
        .unwrap()
        .starts_with("OK CLOSED"));
    assert!(c2
        .roundtrip("SESSION CLOSE")
        .unwrap()
        .starts_with("OK CLOSED"));
    assert!(handle.registry().is_empty());

    handle.shutdown();
    handle.wait().unwrap();
}

#[test]
fn eight_concurrent_readers_bit_identical_to_sequential_engine() {
    let handle = boot(8);
    let mut admin = connect(&handle);
    let session_id = load_workload(&mut admin);
    let (ob, ot, oc) = sequential_oracle();

    let addr = handle.addr();
    let answers: Vec<Vec<String>> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..8)
            .map(|_| {
                s.spawn(move || {
                    let mut c = Client::connect(addr).expect("reader connect");
                    let attach = c
                        .roundtrip(&format!("SESSION ATTACH {session_id}"))
                        .unwrap();
                    assert_eq!(attach, format!("OK SESSION {session_id}"));
                    // Single queries and a batch, all against the one
                    // shared snapshot.
                    let mut out = vec![
                        c.roundtrip("QUERY T v0 v3 SEMIRING bool").unwrap(),
                        c.roundtrip("QUERY T v0 v3 SEMIRING tropical VALUATION unit:1")
                            .unwrap(),
                        c.roundtrip("QUERY T v0 v3 SEMIRING counting").unwrap(),
                    ];
                    let batch = c
                        .send_block(
                            "BATCH",
                            &[
                                "QUERY T v0 v3 SEMIRING bool",
                                "QUERY T v0 v3 SEMIRING tropical VALUATION unit:1",
                                "QUERY T v0 v3 SEMIRING counting",
                            ],
                        )
                        .unwrap();
                    out.extend(batch.body);
                    out
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });

    let expected = vec![
        format!("OK VALUE {ob}"),
        format!("OK VALUE {ot}"),
        format!("OK VALUE {oc}"),
        format!("0 OK {ob}"),
        format!("1 OK {ot}"),
        format!("2 OK {oc}"),
    ];
    for (i, reader) in answers.iter().enumerate() {
        assert_eq!(reader, &expected, "reader {i} diverged from the oracle");
    }

    // 8 readers × (3 singles + 1 batch) reused the session's one frozen
    // grounding: still exactly 1.
    let metrics = admin.run_line("METRICS").unwrap();
    let json = metrics.body.join("\n");
    assert!(
        json.contains("\"groundings\": 1"),
        "concurrent readers must not reground: {json}"
    );
    assert!(json.contains("\"queries_served\": 24"), "{json}");
    assert!(json.contains("\"batches_served\": 8"), "{json}");

    handle.shutdown();
    handle.wait().unwrap();
}

#[test]
fn writes_swap_snapshots_while_readers_keep_answering() {
    let handle = boot(4);
    let mut c = connect(&handle);
    c.roundtrip("SESSION OPEN").unwrap();
    let program: Vec<&str> = TC.lines().collect();
    c.send_block("LOAD PROGRAM", &program).unwrap();
    c.send_block("LOAD FACTS", &["E v0 v1", "E v1 v2"]).unwrap();
    assert_eq!(
        c.roundtrip("QUERY T v0 v3 SEMIRING bool").unwrap(),
        "OK VALUE false"
    );
    // A write extends the chain; the next snapshot sees it.
    c.send_block("LOAD FACTS", &["E v2 v3"]).unwrap();
    assert_eq!(
        c.roundtrip("QUERY T v0 v3 SEMIRING bool").unwrap(),
        "OK VALUE true"
    );
    // Two writes ⇒ two groundings, queries added none.
    let metrics = c.run_line("METRICS").unwrap();
    let json = metrics.body.join("\n");
    assert!(json.contains("\"groundings\": 2"), "{json}");

    handle.shutdown();
    handle.wait().unwrap();
}

#[test]
fn insert_and_retract_round_trip_over_the_wire() {
    let handle = boot(2);
    let mut c = connect(&handle);
    c.roundtrip("SESSION OPEN").unwrap();
    let program: Vec<&str> = TC.lines().collect();
    c.send_block("LOAD PROGRAM", &program).unwrap();
    c.send_block("LOAD FACTS", &["E v0 v1", "E v1 v2"]).unwrap();
    assert_eq!(
        c.roundtrip("QUERY T v0 v3 SEMIRING bool").unwrap(),
        "OK VALUE false"
    );

    // INSERT extends the chain in place; the epoch advances.
    assert_eq!(
        c.roundtrip("INSERT E v2 v3").unwrap(),
        "OK INSERTED 1 EPOCH 1"
    );
    assert_eq!(
        c.roundtrip("QUERY T v0 v3 SEMIRING bool").unwrap(),
        "OK VALUE true"
    );
    assert_eq!(
        c.roundtrip("QUERY T v0 v3 SEMIRING tropical VALUATION unit:1")
            .unwrap(),
        "OK VALUE 3"
    );
    // A duplicate insert is a no-op: nothing changed, epoch held.
    assert_eq!(
        c.roundtrip("INSERT E v2 v3").unwrap(),
        "OK INSERTED 0 EPOCH 1"
    );

    // RETRACT reverts it; retracting again is an error the connection
    // survives.
    assert_eq!(
        c.roundtrip("RETRACT E v2 v3").unwrap(),
        "OK RETRACTED 1 EPOCH 2"
    );
    assert_eq!(
        c.roundtrip("QUERY T v0 v3 SEMIRING bool").unwrap(),
        "OK VALUE false"
    );
    let status = c.roundtrip("RETRACT E v2 v3").unwrap();
    assert!(status.starts_with("ERR QUERY"), "{status}");
    assert_eq!(c.roundtrip("PING").unwrap(), "OK PONG");

    // The whole insert→retract cycle was maintained on the one cached
    // grounding from LOAD FACTS. Four incremental applications: the
    // insert and retract each maintained the engine's grounding, and the
    // retract also repaired the bool and tropical fixpoints cached by
    // the two post-insert queries.
    let metrics = c.run_line("METRICS").unwrap();
    let json = metrics.body.join("\n");
    assert!(json.contains("\"groundings\": 1"), "{json}");
    assert!(json.contains("\"incremental_applied\": 4"), "{json}");
    assert!(json.contains("\"incremental_fallbacks\": 0"), "{json}");

    handle.shutdown();
    handle.wait().unwrap();
}

#[test]
fn perfact_valuation_round_trips_in_query_and_batch() {
    let handle = boot(2);
    let mut c = connect(&handle);
    load_workload(&mut c);

    // Weigh the long path expensive and the short path cheap: tropical
    // takes the v0→a→v2 route (1+2) plus the tail (4). Unlisted facts
    // default to the semiring's 1 (cost 0 for tropical).
    let weights = &[
        "WEIGHT E v0 v1 10",
        "WEIGHT E v1 v2 10",
        "WEIGHT E v0 a 1",
        "WEIGHT E a v2 2",
        "WEIGHT E v2 v3 4",
    ];
    let reply = c
        .send_block("QUERY T v0 v3 SEMIRING tropical VALUATION perfact", weights)
        .unwrap();
    assert_eq!(reply.status, "OK VALUE 7");

    // A typo in a WEIGHT line is a hard error, not a silent no-op.
    let reply = c
        .send_block(
            "QUERY T v0 v3 SEMIRING tropical VALUATION perfact",
            &["WEIGHT E v0 nosuch 3"],
        )
        .unwrap();
    assert!(
        reply.status.starts_with("ERR VALUATION"),
        "{}",
        reply.status
    );

    // In a BATCH, WEIGHT lines attach to the preceding perfact item and
    // are not rows of their own.
    let reply = c
        .send_block(
            "BATCH",
            &[
                "QUERY T v0 v3 SEMIRING tropical VALUATION perfact",
                "WEIGHT E v0 v1 10",
                "WEIGHT E v1 v2 10",
                "WEIGHT E v0 a 1",
                "WEIGHT E a v2 2",
                "WEIGHT E v2 v3 4",
                "QUERY T v0 v3 SEMIRING bool",
            ],
        )
        .unwrap();
    assert_eq!(reply.status, "OK BATCH 2");
    assert_eq!(reply.body[0], "0 OK 7");
    assert_eq!(reply.body[1], "1 OK true");

    handle.shutdown();
    handle.wait().unwrap();
}

/// The ISSUE 8 acceptance case: `INSERT` while 8 readers hammer the
/// session must maintain the one cached grounding, never reground. The
/// readers also pin a correctness floor — a fact derivable before every
/// write stays derivable in every snapshot they observe.
#[test]
fn insert_under_eight_concurrent_readers_never_regrounds() {
    let handle = boot(8);
    let mut admin = connect(&handle);
    let open = admin.roundtrip("SESSION OPEN").unwrap();
    let session_id: u64 = open.strip_prefix("OK SESSION ").unwrap().parse().unwrap();
    let program: Vec<&str> = TC.lines().collect();
    admin.send_block("LOAD PROGRAM", &program).unwrap();
    admin
        .send_block("LOAD FACTS", &["E v0 v1", "E v1 v2"])
        .unwrap();

    let addr = handle.addr();
    std::thread::scope(|s| {
        let readers: Vec<_> = (0..8)
            .map(|_| {
                s.spawn(move || {
                    let mut c = Client::connect(addr).expect("reader connect");
                    c.roundtrip(&format!("SESSION ATTACH {session_id}"))
                        .unwrap();
                    for _ in 0..25 {
                        // Invariant across every write below.
                        assert_eq!(
                            c.roundtrip("QUERY T v0 v2 SEMIRING bool").unwrap(),
                            "OK VALUE true"
                        );
                        // Racing the writer: either answer is fine, but it
                        // must be an answer, never an error.
                        let status = c.roundtrip("QUERY T v0 v4 SEMIRING bool").unwrap();
                        assert!(status.starts_with("OK VALUE"), "{status}");
                    }
                })
            })
            .collect();

        // Writer: grow and shrink the chain while the readers run.
        for _ in 0..10 {
            for cmd in [
                "INSERT E v2 v3",
                "INSERT E v3 v4",
                "RETRACT E v3 v4",
                "RETRACT E v2 v3",
            ] {
                let status = admin.roundtrip(cmd).unwrap();
                assert!(status.starts_with("OK "), "{cmd} → {status}");
            }
        }
        for r in readers {
            r.join().unwrap();
        }
    });

    // 40 writes and 400 reads later: still exactly the one grounding
    // built by LOAD FACTS.
    let metrics = admin.run_line("METRICS").unwrap();
    let json = metrics.body.join("\n");
    assert!(
        json.contains("\"groundings\": 1"),
        "INSERT must maintain, not reground: {json}"
    );
    // At least one incremental application per write; repairs of the
    // bool fixpoint the racing readers cache add a nondeterministic
    // number on top (0..=1 surviving entry per write).
    let applied: u64 = json
        .split("\"incremental_applied\": ")
        .nth(1)
        .and_then(|s| s.split(|c: char| !c.is_ascii_digit()).next())
        .and_then(|s| s.parse().ok())
        .unwrap_or_else(|| panic!("no incremental_applied in {json}"));
    assert!((40..=80).contains(&applied), "{json}");
    assert!(json.contains("\"incremental_fallbacks\": 0"), "{json}");

    handle.shutdown();
    handle.wait().unwrap();
}

#[test]
fn idle_sessions_are_evicted_over_the_wire() {
    let handle = Server::bind(
        ServerConfig::default()
            .workers(2)
            .session_ttl(Some(std::time::Duration::from_millis(200))),
    )
    .expect("bind ephemeral server");
    let mut c = connect(&handle);
    let open = c.roundtrip("SESSION OPEN").unwrap();
    let session_id: u64 = open.strip_prefix("OK SESSION ").unwrap().parse().unwrap();
    load_workload_into(&mut c);
    assert_eq!(handle.registry().len(), 1);

    // Go idle past the TTL; the accept-loop sweep evicts the session.
    std::thread::sleep(std::time::Duration::from_millis(700));
    assert!(handle.registry().is_empty(), "idle session not evicted");

    // A fresh connection can no longer attach…
    let mut fresh = connect(&handle);
    let status = fresh
        .roundtrip(&format!("SESSION ATTACH {session_id}"))
        .unwrap();
    assert!(status.starts_with("ERR BAD-SESSION"), "{status}");

    // …but the original connection still holds the session and can read
    // the eviction off its own metrics stream.
    let metrics = c.run_line("METRICS").unwrap();
    assert!(
        metrics.status.starts_with("OK METRICS"),
        "{}",
        metrics.status
    );
    let json = metrics.body.join("\n");
    assert!(json.contains("\"sessions_evicted\": 1"), "{json}");

    handle.shutdown();
    handle.wait().unwrap();
}

/// `load_workload` minus the SESSION OPEN (for tests that opened one
/// already to capture the id).
fn load_workload_into(c: &mut Client) {
    let program: Vec<&str> = TC.lines().collect();
    c.send_block("LOAD PROGRAM", &program).unwrap();
    let facts = fact_lines();
    let fact_refs: Vec<&str> = facts.iter().map(String::as_str).collect();
    c.send_block("LOAD FACTS", &fact_refs).unwrap();
}

#[test]
fn shutdown_over_the_wire_drains_the_server() {
    let handle = boot(2);
    let mut c = connect(&handle);
    load_workload(&mut c);
    assert_eq!(c.roundtrip("SHUTDOWN").unwrap(), "OK SHUTDOWN");
    assert!(handle.is_shutting_down());
    // The accept loop and every worker exit cleanly.
    handle.wait().unwrap();
}

#[test]
fn overload_rejects_with_single_busy_frame_and_counts() {
    // One worker, one pending slot: pin the worker with a served
    // connection, park a second in the pending queue, and the third must
    // be rejected at admission with a single `ERR BUSY` frame.
    let handle = Server::bind(ServerConfig::default().workers(1).pending_limit(1))
        .expect("bind ephemeral server");
    let mut a = connect(&handle);
    a.roundtrip("SESSION OPEN").unwrap(); // proves the worker is serving A

    // B completes its handshake and waits in the single pending slot.
    let b = std::net::TcpStream::connect(handle.addr()).unwrap();

    // C overflows the queue: the accept loop answers ERR BUSY and closes.
    let c = std::net::TcpStream::connect(handle.addr()).unwrap();
    let mut line = String::new();
    let mut reader = std::io::BufReader::new(c);
    std::io::BufRead::read_line(&mut reader, &mut line).unwrap();
    assert!(line.starts_with("ERR BUSY"), "{line}");
    assert_eq!(handle.registry().overload_rejections(), 1);

    // The reject is surfaced in METRICS as `overload_rejections`.
    let metrics = a.run_line("METRICS").unwrap();
    assert!(
        metrics.status.starts_with("OK METRICS"),
        "{}",
        metrics.status
    );
    let json = metrics.body.join("\n");
    assert!(json.contains("\"overload_rejections\": 1"), "{json}");

    // Established connections were never affected: A keeps serving, and
    // once A quits the worker drains B from the pending queue.
    assert_eq!(a.roundtrip("PING").unwrap(), "OK PONG");
    assert_eq!(a.roundtrip("QUIT").unwrap(), "OK BYE");
    let mut b_reader = std::io::BufReader::new(b.try_clone().unwrap());
    use std::io::Write as _;
    let mut b_stream = b;
    b_stream.write_all(b"PING\n").unwrap();
    let mut pong = String::new();
    std::io::BufRead::read_line(&mut b_reader, &mut pong).unwrap();
    assert_eq!(pong.trim_end(), "OK PONG");

    handle.shutdown();
    handle.wait().unwrap();
}
