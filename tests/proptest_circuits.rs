//! Property-based integration tests: on random graphs, every construction
//! computes the same canonical provenance polynomial, evaluation is a
//! semiring homomorphism, and the reductions are exact.

use datalog_circuits::circuit;
use datalog_circuits::datalog::{self, programs, Database};
use datalog_circuits::graphgen::{generators, LabeledDigraph};
use datalog_circuits::semiring::prelude::*;
use proptest::prelude::*;

fn small_graph() -> impl Strategy<Value = LabeledDigraph> {
    (4usize..8, 6usize..16, any::<u64>())
        .prop_map(|(n, m, seed)| generators::gnm(n, m, &["E"], seed))
}

fn tc_grounding(g: &LabeledDigraph) -> (datalog::Program, Database, datalog::GroundedProgram) {
    let mut p = programs::transitive_closure();
    let (db, _) = Database::from_graph(&mut p, g);
    let gp = datalog::ground(&p, &db).unwrap();
    (p, db, gp)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// All four TC constructions produce identical Sorp polynomials for
    /// every derivable fact (hence agree over every absorptive semiring).
    #[test]
    fn constructions_agree_on_random_graphs(g in small_graph()) {
        let (_, _, gp) = tc_grounding(&g);
        let grounded = circuit::grounded_circuit(&gp, None);
        let uvg = circuit::uvg_circuit(&gp, None);
        for fact in 0..gp.num_idb_facts() {
            prop_assert_eq!(
                grounded.circuit_for(fact).polynomial(),
                uvg.circuit_for(fact).polynomial(),
                "fact {}", fact
            );
        }
    }

    /// Bellman–Ford over the graph equals the grounded provenance per pair.
    #[test]
    fn bellman_ford_matches_engine(g in small_graph()) {
        let (p, db, gp) = tc_grounding(&g);
        let t = p.preds.get("T").unwrap();
        let prov = datalog::provenance_eval(&gp, datalog::default_budget(&gp));
        prop_assert!(prov.converged);
        for src in 0..g.num_nodes().min(3) as u32 {
            let mo = circuit::bellman_ford_all(
                g.num_nodes(),
                &g.edges().iter().map(|&(u, v, _)| (u, v)).collect::<Vec<_>>(),
                &(0..g.num_edges() as u32).collect::<Vec<_>>(),
                src,
            );
            for dst in 0..g.num_nodes() as u32 {
                let poly = mo.circuit_for(dst as usize).polynomial();
                match gp.fact(t, &[
                    db.node_const(src as usize).unwrap(),
                    db.node_const(dst as usize).unwrap(),
                ]) {
                    Some(f) => prop_assert_eq!(&poly, &prov.values[f], "({},{})", src, dst),
                    None => prop_assert!(poly.is_empty(), "({},{})", src, dst),
                }
            }
        }
    }

    /// Direct evaluation over the tropical semiring factors through the
    /// polynomial (evaluation is a homomorphism — §2.5 "computes").
    #[test]
    fn eval_factors_through_polynomial(g in small_graph(), w in 1u64..9) {
        let (_, _, gp) = tc_grounding(&g);
        let mo = circuit::grounded_circuit(&gp, None);
        let assign = from_fn(move |v: u32| Tropical::new((v as u64 % w) + 1));
        for fact in 0..gp.num_idb_facts() {
            let c = mo.circuit_for(fact);
            prop_assert_eq!(c.eval(&assign), c.polynomial().eval(&assign));
        }
    }

    /// Input substitution commutes with polynomial semantics: substituting
    /// x ↦ 1 in the circuit equals substituting in the polynomial.
    #[test]
    fn substitution_commutes(g in small_graph(), kill in 0u32..12) {
        let (_, _, gp) = tc_grounding(&g);
        let mo = circuit::grounded_circuit(&gp, None);
        for fact in 0..gp.num_idb_facts().min(6) {
            let c = mo.circuit_for(fact);
            let sub = c.substitute_inputs(&|v| if v == kill {
                circuit::InputSubst::One
            } else {
                circuit::InputSubst::Var(v)
            });
            // Evaluate original with x_kill = 1 over the tropical semiring.
            let assign_killed = from_fn(move |v: u32| if v == kill {
                Tropical::one()
            } else {
                Tropical::new((v as u64 % 5) + 1)
            });
            let assign_plain = from_fn(move |v: u32| Tropical::new((v as u64 % 5) + 1));
            prop_assert_eq!(c.eval(&assign_killed), sub.eval(&assign_plain));
        }
    }

    /// Naive evaluation converges within the default budget over the
    /// universal absorptive semiring on any small input (0-stability).
    #[test]
    fn sorp_eval_converges(g in small_graph()) {
        let (_, _, gp) = tc_grounding(&g);
        let out = datalog::provenance_eval(&gp, datalog::default_budget(&gp));
        prop_assert!(out.converged);
        // Values booleanize to derivability.
        for (i, v) in out.values.iter().enumerate() {
            prop_assert!(!v.is_empty(), "fact {} derivable but 0", i);
        }
    }

    /// The Theorem 5.9 reduction is exact on random layered instances.
    #[test]
    fn tc_to_rpq_reduction_exact(seed in 0u64..200, width in 2usize..4, layers in 2usize..4) {
        let re = datalog_circuits::grammar::Regex::parse("a b* c").unwrap();
        let mut alphabet = datalog_circuits::grammar::Alphabet::new();
        let dfa = datalog_circuits::grammar::Dfa::compile(&re, &mut alphabet);
        let pumping = datalog_circuits::grammar::RegularPumping::from_dfa(&dfa).unwrap();
        let (g, s, t) = generators::layered(width, layers, 0.6, "E", seed);
        let inst = circuit::tc_to_rpq(&g, s, t, &pumping, &|tt| alphabet.name(tt).to_owned());
        let mut eg = inst.graph.clone();
        let dfa2 = datalog_circuits::grammar::Dfa::compile(&re, &mut eg.alphabet);
        let big = circuit::rpq_circuit(&eg, &dfa2, inst.src, inst.dst, circuit::TcStrategy::BellmanFord);
        let rewired = inst.rewire(&big);
        let (p, db, gp) = tc_grounding(&g);
        let expect = match datalog_circuits::datalog::ground(&p, &db).ok().and_then(|_| {
            gp.fact(p.preds.get("T").unwrap(), &[
                db.node_const(s as usize).unwrap(),
                db.node_const(t as usize).unwrap(),
            ])
        }) {
            Some(f) => datalog::provenance_eval(&gp, datalog::default_budget(&gp)).values[f].clone(),
            None => Sorp::zero(),
        };
        prop_assert_eq!(rewired.polynomial(), expect);
    }
}
