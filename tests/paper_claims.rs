//! The paper's headline claims, asserted as tests: classification
//! dichotomies on a battery of programs, and the measured depth shapes of
//! Table 1.

use datalog_circuits::datalog::{self, programs};
use datalog_circuits::graphgen::generators;
use datalog_circuits::provcirc::prelude::*;
use datalog_circuits::provcirc::{DepthBound, FormulaVerdict};

/// Theorem 5.3 + 5.4 + 4.3: the classification battery.
#[test]
fn classification_battery() {
    struct Case {
        name: &'static str,
        program: datalog::Program,
        upper: DepthBound,
        lower: DepthBound,
        formula: FormulaVerdict,
    }
    let cases = [
        Case {
            name: "TC",
            program: programs::transitive_closure(),
            upper: DepthBound::LogSquared,
            lower: DepthBound::LogSquared,
            formula: FormulaVerdict::SuperPolynomial,
        },
        Case {
            name: "three hops",
            program: programs::three_hops(),
            upper: DepthBound::Log,
            lower: DepthBound::Log,
            formula: FormulaVerdict::Polynomial,
        },
        Case {
            name: "Example 4.2",
            program: programs::bounded_example(),
            upper: DepthBound::Log,
            lower: DepthBound::Log,
            formula: FormulaVerdict::Polynomial,
        },
        Case {
            name: "monadic reachability",
            program: programs::monadic_reachability(),
            upper: DepthBound::LogSquared,
            lower: DepthBound::LogSquared,
            formula: FormulaVerdict::SuperPolynomial,
        },
        Case {
            name: "same generation",
            program: programs::same_generation(),
            upper: DepthBound::LogSquared,
            lower: DepthBound::LogSquared,
            formula: FormulaVerdict::SuperPolynomial,
        },
        Case {
            name: "Dyck-1",
            program: programs::dyck1(),
            upper: DepthBound::FixpointTimesLog,
            lower: DepthBound::LogSquared,
            formula: FormulaVerdict::SuperPolynomial,
        },
    ];
    for case in cases {
        let c = classify_program(&case.program, 5);
        assert_eq!(c.depth_upper, case.upper, "{} upper", case.name);
        assert_eq!(c.depth_lower, case.lower, "{} lower", case.name);
        assert_eq!(c.formula, case.formula, "{} formula", case.name);
    }
}

/// Theorem 5.3 measured: finite RPQ depth grows like log n, infinite like
/// log² n — the normalized series stay within a constant band while the
/// cross-normalized ones drift.
#[test]
fn depth_dichotomy_shape() {
    let finite = datalog::parse_program(
        "P3(X,Y) :- P2(X,Z), E(Z,Y).\nP2(X,Y) :- P1(X,Z), E(Z,Y).\nP1(X,Y) :- E(X,Y).\n@target P3",
    )
    .unwrap();
    let tc = programs::transitive_closure();
    let mut fin_norm = Vec::new();
    let mut inf_norm = Vec::new();
    let mut inf_wrong_norm = Vec::new();
    for n in [8usize, 16, 32, 64] {
        // Sparse enough that 3-hop targets exist from some source.
        let g = generators::gnm(n, 2 * n, &["E"], 5);
        let (src, d3) = (0..n as u32)
            .find_map(|s| {
                g.bfs_distances(s)
                    .iter()
                    .position(|&d| d == Some(3))
                    .map(|v| (s, v as u32))
            })
            .expect("some 3-hop pair");
        let far = g
            .bfs_distances(src)
            .iter()
            .enumerate()
            .filter_map(|(v, d)| d.map(|d| (d, v as u32)))
            .max()
            .unwrap()
            .1;
        let log = (n as f64).log2();
        let cf = compile_graph_fact(&finite, &g, src, d3, Strategy::Auto).unwrap();
        let ci = compile_graph_fact(&tc, &g, src, far, Strategy::Auto).unwrap();
        fin_norm.push(cf.stats.depth as f64 / log);
        inf_norm.push(ci.stats.depth as f64 / (log * log));
        inf_wrong_norm.push(ci.stats.depth as f64 / log);
    }
    let band = |xs: &[f64]| {
        let min = xs.iter().cloned().fold(f64::MAX, f64::min).max(1e-9);
        let max = xs.iter().cloned().fold(0.0f64, f64::max);
        max / min
    };
    // Finite-language depth is O(log n) from above but near-constant on
    // instances this small, so depth/log n may *decay* by ~log(64)/log(8);
    // the band only guards against upward drift.
    assert!(
        band(&fin_norm) < 3.5,
        "finite depth/log n not flat: {fin_norm:?}"
    );
    assert!(
        *fin_norm.last().unwrap() <= fin_norm[0] * 1.5,
        "finite depth/log n should not drift upward: {fin_norm:?}"
    );
    assert!(
        band(&inf_norm) < 2.5,
        "infinite depth/log²n not flat: {inf_norm:?}"
    );
    // The wrong normalization trends upward (depth ≫ log n) while the right
    // one does not grow: the Θ(log² n) signature.
    let (w0, wl) = (inf_wrong_norm[0], *inf_wrong_norm.last().unwrap());
    let (r0, rl) = (inf_norm[0], *inf_norm.last().unwrap());
    assert!(
        wl > w0 * 1.2,
        "depth/log n should drift upward: {inf_wrong_norm:?}"
    );
    assert!(rl < r0 * 1.2, "depth/log² n should stay flat: {inf_norm:?}");
}

/// Theorem 3.5 + Theorem 3.4 interplay: linear-size circuits exist for
/// layered graphs while the depth-optimal construction pays a size factor.
#[test]
fn layered_graph_trade_off() {
    // Deep and narrow so the linear-depth construction is visibly deeper
    // than the polylog squaring circuit.
    let (g, s, t) = generators::layered(2, 48, 1.0, "E", 3);
    let linear = datalog_circuits::circuit::dag_path_circuit_graph(&g, s, t).unwrap();
    let squaring = datalog_circuits::circuit::squaring_graph(&g).circuit_for(s, t);
    let ls = datalog_circuits::circuit::stats(&linear);
    let ss = datalog_circuits::circuit::stats(&squaring);
    // Same function (the Sorp polynomial has ~2^48 monomials here, so we
    // compare through concrete absorptive semirings instead):
    use datalog_circuits::semiring::{from_fn, Bottleneck, Tropical};
    let w = from_fn(|e: u32| Tropical::new((e as u64 % 7) + 1));
    assert_eq!(linear.eval(&w), squaring.eval(&w));
    let cap = from_fn(|e: u32| Bottleneck::new((e as u64 % 9) + 1));
    assert_eq!(linear.eval(&cap), squaring.eval(&cap));
    // …linear size vs poly size; linear depth vs polylog depth.
    assert!(ls.num_gates <= 3 * g.num_edges() + 3);
    assert!(ss.num_gates > ls.num_gates);
    assert!(ss.depth < ls.depth);
}

/// Proposition 2.4: non-tight proof trees are absorbed — naive evaluation
/// over Sorp (all trees, via the fixpoint) equals tight-tree enumeration.
#[test]
fn proposition_2_4_absorption() {
    for seed in 0..4u64 {
        let g = generators::gnm(6, 14, &["E"], seed);
        let mut p = programs::transitive_closure();
        let (_, _) = datalog::Database::from_graph(&mut p, &g);
        let mut p2 = programs::transitive_closure();
        let (db, _) = datalog::Database::from_graph(&mut p2, &g);
        let gp = datalog::ground(&p2, &db).unwrap();
        let fix = datalog::provenance_eval(&gp, datalog::default_budget(&gp));
        assert!(fix.converged);
        for fact in 0..gp.num_idb_facts() {
            if let Some(enumerated) = datalog::provenance_polynomial(&gp, fact, 50_000) {
                assert_eq!(enumerated, fix.values[fact], "seed {seed} fact {fact}");
            }
        }
    }
}

/// Corollary 4.7 consequence: the compiled circuit's Boolean value equals
/// its Fuzzy/Bottleneck booleanization on every input (positivity,
/// Prop 3.6's homomorphism).
#[test]
fn positivity_transfer() {
    use datalog_circuits::semiring::{Bool, Bottleneck, Fuzzy, Positive, UnitWeights};
    let p = programs::transitive_closure();
    let g = generators::gnm(7, 16, &["E"], 21);
    for dst in 1..6u32 {
        let c = compile_graph_fact(&p, &g, 0, dst, Strategy::ProductBellmanFord).unwrap();
        let b: Bool = c.circuit.eval(&UnitWeights::new(Bool(true)));
        let f: Fuzzy = c.circuit.eval(&UnitWeights::new(Fuzzy::new(0.7)));
        let k: Bottleneck = c.circuit.eval(&UnitWeights::new(Bottleneck::new(5)));
        assert_eq!(b, f.to_bool());
        assert_eq!(b, k.to_bool());
    }
}
