//! Engine-level oracle tests: the Datalog engine against independent
//! textbook algorithms (BFS reachability, path-counting DP, Dijkstra-free
//! unit-weight shortest paths) on random DAGs and digraphs.

use datalog_circuits::datalog::{self, programs, Database};
use datalog_circuits::graphgen::{generators, LabeledDigraph};
use datalog_circuits::semiring::prelude::*;
use proptest::prelude::*;

/// Count simple u→v paths in a DAG by topological DP (oracle for the
/// counting semiring on acyclic inputs).
fn dag_path_counts(g: &LabeledDigraph, src: u32) -> Vec<u64> {
    // random_dag guarantees edges go from lower to higher ids.
    let mut counts = vec![0u64; g.num_nodes()];
    counts[src as usize] = 1;
    let mut edges: Vec<(u32, u32)> = g.edges().iter().map(|&(u, v, _)| (u, v)).collect();
    edges.sort();
    for (u, v) in edges {
        counts[v as usize] += counts[u as usize];
    }
    counts[src as usize] = 0; // E⁺ paths need at least one edge
    counts
}

fn tc_grounding(g: &LabeledDigraph) -> (datalog::Program, Database, datalog::GroundedProgram) {
    let mut p = programs::transitive_closure();
    let (db, _) = Database::from_graph(&mut p, g);
    let gp = datalog::ground(&p, &db).unwrap();
    (p, db, gp)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Boolean semantics ⇔ BFS reachability (with ≥1 edge).
    #[test]
    fn boolean_is_reachability(n in 4usize..10, m in 6usize..24, seed in any::<u64>()) {
        let g = generators::gnm(n, m, &["E"], seed);
        let (p, db, gp) = tc_grounding(&g);
        let t = p.preds.get("T").unwrap();
        for src in 0..n as u32 {
            // BFS from each out-neighbor (E⁺ = at least one edge).
            let mut reach = vec![false; n];
            for &(u, v, _) in g.edges() {
                if u == src {
                    for (i, r) in g.reachable_from(v).iter().enumerate() {
                        reach[i] |= r;
                    }
                }
            }
            for dst in 0..n as u32 {
                let derived = gp.fact(t, &[
                    db.node_const(src as usize).unwrap(),
                    db.node_const(dst as usize).unwrap(),
                ]).is_some();
                prop_assert_eq!(derived, reach[dst as usize], "({},{})", src, dst);
            }
        }
    }

    /// Counting semantics on DAGs ⇔ the path-counting DP.
    #[test]
    fn counting_is_path_dp_on_dags(n in 4usize..9, density in 0.2f64..0.7, seed in any::<u64>()) {
        let g = generators::random_dag(n, density, "E", seed);
        let (p, db, gp) = tc_grounding(&g);
        let t = p.preds.get("T").unwrap();
        let out = datalog::naive_eval::<Counting, _>(&gp, &from_fn(|_| Counting::new(1)), 64);
        prop_assert!(out.converged);
        for src in 0..n as u32 {
            let oracle = dag_path_counts(&g, src);
            for dst in 0..n as u32 {
                let count = gp.fact(t, &[
                    db.node_const(src as usize).unwrap(),
                    db.node_const(dst as usize).unwrap(),
                ]).map(|f| out.values[f].0).unwrap_or(0);
                prop_assert_eq!(count, oracle[dst as usize], "({},{})", src, dst);
            }
        }
    }

    /// Tropical semantics with unit weights ⇔ BFS hop distance.
    #[test]
    fn tropical_is_bfs_distance(n in 4usize..10, m in 6usize..24, seed in any::<u64>()) {
        let g = generators::gnm(n, m, &["E"], seed);
        let (p, db, gp) = tc_grounding(&g);
        let t = p.preds.get("T").unwrap();
        let out = datalog::naive_eval::<Tropical, _>(&gp, &from_fn(|_| Tropical::new(1)),
            datalog::default_budget(&gp));
        prop_assert!(out.converged);
        for src in 0..n as u32 {
            let dist = g.bfs_distances(src);
            for dst in 0..n as u32 {
                if src == dst { continue; }
                if let Some(f) = gp.fact(t, &[
                    db.node_const(src as usize).unwrap(),
                    db.node_const(dst as usize).unwrap(),
                ]) {
                    prop_assert_eq!(
                        out.values[f],
                        Tropical::new(dist[dst as usize].unwrap()),
                        "({},{})", src, dst
                    );
                }
            }
        }
    }

    /// Trop_1 degenerates to the tropical semiring exactly.
    #[test]
    fn trop1_equals_tropical(n in 4usize..8, m in 6usize..18, seed in any::<u64>()) {
        let g = generators::gnm(n, m, &["E"], seed);
        let (_, _, gp) = tc_grounding(&g);
        let budget = datalog::default_budget(&gp);
        let t1 = datalog::naive_eval::<TropK<1>, _>(&gp, &from_fn(|f| TropK::single(f as u64 % 5 + 1)), budget);
        let tr = datalog::naive_eval::<Tropical, _>(&gp, &from_fn(|f| Tropical::new(f as u64 % 5 + 1)), budget);
        prop_assert!(t1.converged && tr.converged);
        for (a, b) in t1.values.iter().zip(tr.values.iter()) {
            prop_assert_eq!(a.best(), b.finite());
        }
    }

    /// Łukasiewicz provenance is bounded by Fuzzy provenance pointwise
    /// (⊗_Ł ≤ min), and both booleanize identically (positivity).
    #[test]
    fn lukasiewicz_below_fuzzy(n in 4usize..8, m in 6usize..18, seed in any::<u64>()) {
        let g = generators::gnm(n, m, &["E"], seed);
        let (_, _, gp) = tc_grounding(&g);
        let budget = datalog::default_budget(&gp);
        let assign_l = from_fn(|f: u32| Lukasiewicz::new(0.8 + (f % 3) as f64 / 15.0));
        let assign_f = from_fn(|f: u32| Fuzzy::new(0.8 + (f % 3) as f64 / 15.0));
        let l = datalog::naive_eval::<Lukasiewicz, _>(&gp, &assign_l, budget);
        let f = datalog::naive_eval::<Fuzzy, _>(&gp, &assign_f, budget);
        prop_assert!(l.converged && f.converged);
        for (lv, fv) in l.values.iter().zip(f.values.iter()) {
            prop_assert!(lv.value() <= fv.value() + 1e-9);
        }
    }
}

/// Divergence detection: counting over any graph with a cycle reachable
/// from a derivable fact must report non-convergence, never loop forever.
#[test]
fn divergence_is_detected_not_hung() {
    for n in [2usize, 3, 5, 9] {
        let g = generators::cycle(n, "E");
        let (_, _, gp) = tc_grounding(&g);
        let start = std::time::Instant::now();
        let out = datalog::naive_eval::<Counting, _>(&gp, &from_fn(|_| Counting::new(1)), 100);
        assert!(!out.converged);
        assert!(start.elapsed().as_secs() < 30);
    }
}

/// TropicalZ (ℤ, not absorptive): converges on DAGs, including with
/// negative weights — but naive evaluation on negative cycles diverges,
/// which the budget catches.
#[test]
fn tropical_z_negative_weights() {
    let g = generators::random_dag(8, 0.4, "E", 3);
    let (_, _, gp) = tc_grounding(&g);
    let out = datalog::naive_eval::<TropicalZ, _>(
        &gp,
        &from_fn(|f| TropicalZ::new((f as i64 % 5) - 2)),
        64,
    );
    assert!(out.converged, "DAGs converge even without absorption");

    let g2 = generators::cycle(3, "E");
    let (_, _, gp2) = tc_grounding(&g2);
    let out2 = datalog::naive_eval::<TropicalZ, _>(&gp2, &from_fn(|_| TropicalZ::new(-1)), 100);
    assert!(!out2.converged, "negative cycle must not converge");
}
