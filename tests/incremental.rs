//! Integration tests for the incremental maintenance subsystem (ISSUE 8).
//!
//! The correctness bar: after **any** interleaving of inserts and
//! retracts, a maintained [`Engine`]'s query answers are bit-identical to
//! a from-scratch rebuild on every supported semiring — Bool, Tropical,
//! TropK₃, Counting, and the universal absorptive Sorp.
//!
//! Fact ids are *not* stable across the two engines (retract-then-
//! reinsert allocates a fresh id in the maintained engine), so per-fact
//! valuations here key on the fact's **tuple**, not its id: both engines
//! see the same weight (and the same canonical Sorp variable) for the
//! same edge, which is exactly what makes polynomial-level bit-equality
//! meaningful.
//!
//! CI re-runs this suite under `DATALOG_PARALLELISM=4` (engines below use
//! the session default, which that variable overrides), so the bar also
//! covers the sharded evaluation path; one deterministic test pins
//! `parallelism(4)` explicitly for runs without the variable.

use std::collections::{BTreeSet, HashMap};

use datalog_circuits::provcirc::Engine;
use datalog_circuits::semiring::prelude::*;
use proptest::prelude::*;

const TC: &str = "T(X,Y) :- E(X,Y).\nT(X,Y) :- T(X,Z), E(Z,Y).";

/// Node universe: constants `v0..v5`. Small enough that a dozen toggles
/// revisit edges (exercising retract-then-reinsert), big enough for
/// multi-hop derivations.
const N: usize = 6;

type Edge = (usize, usize);

fn node(i: usize) -> String {
    format!("v{i}")
}

/// An engine built from scratch over exactly the live edge set — the
/// oracle every maintained engine must match bit-for-bit.
fn fresh_engine(live: &BTreeSet<Edge>) -> Engine {
    let mut b = Engine::builder().program_text(TC);
    for &(u, v) in live {
        b = b.fact("E", &[&node(u), &node(v)]);
    }
    b.build().unwrap()
}

/// Canonical weight of an edge — a function of the *tuple* so both
/// engines agree regardless of fact-id history.
fn weight(u: usize, v: usize) -> u64 {
    ((3 * u + 5 * v) % 7 + 1) as u64
}

/// Canonical Sorp variable of an edge.
fn canon_var(u: usize, v: usize) -> VarId {
    (u * N + v) as VarId
}

/// Map an engine's EDB fact ids to their edge tuples. Retracted zombies
/// keep their slot in the database; mapping them too is harmless — no
/// surviving rule cites them, so their assignment never reaches a value.
fn edge_of_fact(engine: &Engine) -> HashMap<u32, Edge> {
    let db = engine.database();
    let mut map = HashMap::new();
    for f in db.all_facts() {
        let (_, consts) = db.fact(f);
        let idx = |c: u32| db.consts.name(c)[1..].parse::<usize>().unwrap();
        map.insert(f, (idx(consts[0]), idx(consts[1])));
    }
    map
}

/// Assert bit-identical answers for every pair `(u, v)` over the listed
/// semirings. `dag` gates Counting: over a cyclic graph the counting
/// fixpoint diverges (infinitely many paths), so it is only compared on
/// acyclic edge sets, where it converges exactly.
fn assert_bit_identical(
    maintained: &Engine,
    fresh: &Engine,
    dag: bool,
) -> Result<(), TestCaseError> {
    let em = edge_of_fact(maintained);
    let ef = edge_of_fact(fresh);
    let trop_m = from_fn(|x: u32| Tropical::new(weight(em[&x].0, em[&x].1)));
    let trop_f = from_fn(|x: u32| Tropical::new(weight(ef[&x].0, ef[&x].1)));
    let tropk_m = from_fn(|x: u32| TropK::<3>::single(weight(em[&x].0, em[&x].1)));
    let tropk_f = from_fn(|x: u32| TropK::<3>::single(weight(ef[&x].0, ef[&x].1)));
    let sorp_m = from_fn(|x: u32| Sorp::var(canon_var(em[&x].0, em[&x].1)));
    let sorp_f = from_fn(|x: u32| Sorp::var(canon_var(ef[&x].0, ef[&x].1)));

    for u in 0..N {
        for v in 0..N {
            let (su, sv) = (node(u), node(v));
            let qm = maintained.query("T", &[&su, &sv]).unwrap();
            let qf = fresh.query("T", &[&su, &sv]).unwrap();

            let bm: Bool = qm.eval(&AllOnes).unwrap();
            let bf: Bool = qf.eval(&AllOnes).unwrap();
            prop_assert_eq!(bm, bf, "Bool diverged on T({}, {})", su, sv);

            let tm: Tropical = qm.eval(&trop_m).unwrap();
            let tf: Tropical = qf.eval(&trop_f).unwrap();
            prop_assert_eq!(tm, tf, "Tropical diverged on T({}, {})", su, sv);

            let km: TropK<3> = qm.eval(&tropk_m).unwrap();
            let kf: TropK<3> = qf.eval(&tropk_f).unwrap();
            prop_assert_eq!(km, kf, "TropK<3> diverged on T({}, {})", su, sv);

            if dag {
                let cm: Counting = qm.eval(&AllOnes).unwrap();
                let cf: Counting = qf.eval(&AllOnes).unwrap();
                prop_assert_eq!(cm, cf, "Counting diverged on T({}, {})", su, sv);
            }

            let sm: Sorp = qm.eval(&sorp_m).unwrap();
            let sf: Sorp = qf.eval(&sorp_f).unwrap();
            prop_assert_eq!(sm, sf, "Sorp diverged on T({}, {})", su, sv);
        }
    }
    Ok(())
}

/// Toggle each edge in `ops` against the maintained engine: retract if
/// live, insert if absent. Edge `(0, 1)` is pinned live so the engines
/// never go fully empty. Returns the surviving live set.
fn apply_toggles(
    engine: &mut Engine,
    live: &mut BTreeSet<Edge>,
    ops: &[Edge],
) -> Result<(), TestCaseError> {
    for &(u, v) in ops {
        if (u, v) == (0, 1) || u == v {
            continue;
        }
        let (su, sv) = (node(u), node(v));
        if live.remove(&(u, v)) {
            let out = engine.retract_fact("E", &[&su, &sv]).unwrap();
            prop_assert_eq!(out.facts.len(), 1);
        } else {
            live.insert((u, v));
            let out = engine.insert_fact("E", &[&su, &sv]).unwrap();
            prop_assert_eq!(out.facts.len(), 1);
        }
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// DAG edge sets (edges forced low→high): all five semirings,
    /// Counting included, after an arbitrary toggle interleaving.
    #[test]
    fn interleaving_matches_rebuild_on_dags(
        base in proptest::collection::vec((0usize..N, 0usize..N), 3..10),
        ops in proptest::collection::vec((0usize..N, 0usize..N), 1..14),
    ) {
        let orient = |(a, b): Edge| if a < b { (a, b) } else { (b, a) };
        let mut live: BTreeSet<Edge> = base.iter().copied()
            .filter(|&(a, b)| a != b).map(orient).collect();
        live.insert((0, 1));
        let mut maintained = fresh_engine(&live);
        let ops: Vec<Edge> = ops.iter().copied()
            .filter(|&(a, b)| a != b).map(orient).collect();
        apply_toggles(&mut maintained, &mut live, &ops)?;
        let fresh = fresh_engine(&live);
        assert_bit_identical(&maintained, &fresh, true)?;
        // The whole interleaving was maintained: one grounding, no
        // regrounds, every write counted as incremental.
        let report = maintained.metrics_report();
        prop_assert_eq!(report.cache.groundings, 1, "writes must not reground");
    }

    /// Unrestricted (cyclic) edge sets: Bool/Tropical/TropK₃/Sorp. The
    /// counting fixpoint diverges on cycles, so it sits this one out.
    #[test]
    fn interleaving_matches_rebuild_on_cyclic_graphs(
        base in proptest::collection::vec((0usize..N, 0usize..N), 3..10),
        ops in proptest::collection::vec((0usize..N, 0usize..N), 1..14),
    ) {
        let mut live: BTreeSet<Edge> = base.iter().copied()
            .filter(|&(a, b)| a != b).collect();
        live.insert((0, 1));
        let mut maintained = fresh_engine(&live);
        let ops: Vec<Edge> = ops.iter().copied().filter(|&(a, b)| a != b).collect();
        apply_toggles(&mut maintained, &mut live, &ops)?;
        let fresh = fresh_engine(&live);
        assert_bit_identical(&maintained, &fresh, false)?;
    }
}

/// Batched writes land in the same place as the equivalent singles, and
/// both match a rebuild.
#[test]
fn batched_writes_match_single_fact_writes() {
    let base: BTreeSet<Edge> = [(0, 1), (1, 2), (2, 3)].into_iter().collect();
    let mut singles = fresh_engine(&base);
    let mut batched = fresh_engine(&base);

    for (u, v) in [(3, 4), (4, 5), (0, 2)] {
        singles.insert_fact("E", &[&node(u), &node(v)]).unwrap();
    }
    singles.retract_fact("E", &[&node(1), &node(2)]).unwrap();

    batched
        .insert_facts(&[
            ("E", &["v3", "v4"] as &[&str]),
            ("E", &["v4", "v5"]),
            ("E", &["v0", "v2"]),
        ])
        .unwrap();
    batched
        .retract_facts(&[("E", &["v1", "v2"] as &[&str])])
        .unwrap();

    let live: BTreeSet<Edge> = [(0, 1), (2, 3), (3, 4), (4, 5), (0, 2)]
        .into_iter()
        .collect();
    let fresh = fresh_engine(&live);
    assert_bit_identical(&singles, &fresh, true).unwrap();
    assert_bit_identical(&batched, &fresh, true).unwrap();
    // Batching coalesces epochs: one per batch, not one per fact.
    assert_eq!(singles.epoch(), 4);
    assert_eq!(batched.epoch(), 2);
}

/// The explicit `parallelism(4)` belt for runs without
/// `DATALOG_PARALLELISM=4`: a maintained sharded engine matches a
/// sequential rebuild bit-for-bit.
#[test]
fn maintained_sharded_engine_matches_sequential_rebuild() {
    let base: BTreeSet<Edge> = [(0, 1), (1, 2), (2, 3), (3, 4)].into_iter().collect();
    let mut b = Engine::builder().program_text(TC).parallelism(4);
    for &(u, v) in &base {
        b = b.fact("E", &[&node(u), &node(v)]);
    }
    let mut maintained = b.build().unwrap();
    let mut live = base;
    let ops = [(4, 5), (1, 2), (1, 2), (0, 3), (2, 3)];
    apply_toggles(&mut maintained, &mut live, &ops).unwrap();

    let mut f = Engine::builder().program_text(TC).parallelism(1);
    for &(u, v) in &live {
        f = f.fact("E", &[&node(u), &node(v)]);
    }
    let fresh = f.build().unwrap();
    assert_bit_identical(&maintained, &fresh, true).unwrap();
}

/// The umbrella re-export of the value-maintenance layer is usable as
/// `datalog_circuits::incremental` (and as `provcirc::incremental`).
#[test]
fn incremental_crate_is_re_exported() {
    use datalog_circuits::incremental::MaintainedFixpoint;
    let _ = std::any::type_name::<MaintainedFixpoint<Tropical>>();
    let _ =
        std::any::type_name::<datalog_circuits::provcirc::incremental::MaintainedFixpoint<Bool>>();
}
