//! Snapshot-test corpus for the three query pipelines (ISSUE 9).
//!
//! Each `tests/corpus/*.dl` file is a tiny script — a program block, EDB
//! facts, optional per-fact weights, and a list of bound point queries.
//! The runner evaluates **every query under all three pipelines**
//! (materialized, fused, magic), asserts the rendered answers are
//! byte-identical across pipelines, and then diffs the materialized
//! answers against the committed `<case>.dl.out` snapshot.
//!
//! Workflow knobs (env vars):
//! - `CORPUS_UPDATE=1` — rewrite every `.dl.out` from the current
//!   materialized answers instead of diffing (run after an intentional
//!   semantics change, then review the diff in git).
//! - `CORPUS_FILTER=<substring>` — only run case files whose name
//!   contains the substring (the CI fast lane uses this as a smoke run).
//!
//! Script grammar (one directive per line, `#` starts a comment):
//! ```text
//! PROGRAM          # datalog rules until END (may be empty)
//!   T(X,Y) :- E(X,Y).
//! END
//! FACT E v0 v1     # one EDB fact
//! WEIGHT E v0 v1 3 # per-fact weight, used by VALUATION perfact
//! QUERY T v0 v1 SEMIRING tropical VALUATION unit:1
//! ```
//! Valuations are `ones` (default), `unit:<w>`, or `perfact`. A query
//! whose evaluation exceeds the budget renders `DIVERGED` — divergence
//! behaviour is part of the snapshot contract, and all three pipelines
//! must agree on it too.

use std::fs;
use std::path::{Path, PathBuf};

use datalog_circuits::provcirc::{Engine, Error, Pipeline};
use datalog_circuits::semiring::valuation::{AllOnes, PerFact, UnitWeights};
use datalog_circuits::semiring::{Bool, Bottleneck, Counting, Fuzzy, Semiring, Tropical};

struct Case {
    program: String,
    facts: Vec<(String, Vec<String>)>,
    weights: Vec<(String, Vec<String>, f64)>,
    queries: Vec<CorpusQuery>,
}

struct CorpusQuery {
    pred: String,
    args: Vec<String>,
    semiring: String,
    valuation: String,
}

impl CorpusQuery {
    /// The stable left-hand side of a snapshot line.
    fn label(&self) -> String {
        format!(
            "{} {} {} {}",
            self.pred,
            self.args.join(" "),
            self.semiring,
            self.valuation
        )
    }
}

fn parse_case(path: &Path, text: &str) -> Case {
    let mut program = String::new();
    let mut facts = Vec::new();
    let mut weights = Vec::new();
    let mut queries = Vec::new();
    let mut lines = text.lines().enumerate();
    while let Some((n, raw)) = lines.next() {
        let line = raw.split('#').next().unwrap_or("").trim();
        if line.is_empty() {
            continue;
        }
        let bad = |msg: &str| -> ! { panic!("{}:{}: {msg}: {raw:?}", path.display(), n + 1) };
        let toks: Vec<&str> = line.split_ascii_whitespace().collect();
        match toks[0] {
            "PROGRAM" => {
                for (_, raw) in lines.by_ref() {
                    if raw.trim() == "END" {
                        break;
                    }
                    program.push_str(raw);
                    program.push('\n');
                }
            }
            "FACT" => {
                if toks.len() < 2 {
                    bad("FACT needs a predicate");
                }
                facts.push((
                    toks[1].to_owned(),
                    toks[2..].iter().map(|s| (*s).to_owned()).collect(),
                ));
            }
            "WEIGHT" => {
                if toks.len() < 4 {
                    bad("WEIGHT needs <pred> <c…> <w>");
                }
                let w: f64 = toks[toks.len() - 1]
                    .parse()
                    .unwrap_or_else(|_| bad("WEIGHT needs a numeric weight"));
                weights.push((
                    toks[1].to_owned(),
                    toks[2..toks.len() - 1]
                        .iter()
                        .map(|s| (*s).to_owned())
                        .collect(),
                    w,
                ));
            }
            "QUERY" => {
                let sem_pos = toks
                    .iter()
                    .position(|t| *t == "SEMIRING")
                    .unwrap_or_else(|| bad("QUERY needs a SEMIRING clause"));
                if sem_pos < 2 || sem_pos + 1 >= toks.len() {
                    bad("QUERY <pred> <c…> SEMIRING <name> [VALUATION <spec>]");
                }
                let valuation = match toks.get(sem_pos + 2) {
                    None => "ones".to_owned(),
                    Some(&"VALUATION") => toks
                        .get(sem_pos + 3)
                        .unwrap_or_else(|| bad("VALUATION needs a spec"))
                        .to_string(),
                    Some(_) => bad("trailing tokens after SEMIRING name"),
                };
                queries.push(CorpusQuery {
                    pred: toks[1].to_owned(),
                    args: toks[2..sem_pos].iter().map(|s| (*s).to_owned()).collect(),
                    semiring: toks[sem_pos + 1].to_owned(),
                    valuation,
                });
            }
            _ => bad("unknown directive"),
        }
    }
    assert!(
        !queries.is_empty(),
        "{}: a corpus case must hold at least one QUERY",
        path.display()
    );
    Case {
        program,
        facts,
        weights,
        queries,
    }
}

fn build_engine(case: &Case, pipeline: Pipeline) -> Engine {
    let mut b = Engine::builder()
        .program_text(&case.program)
        .pipeline(pipeline)
        .parallelism(
            std::env::var("DATALOG_PARALLELISM")
                .ok()
                .and_then(|v| v.parse().ok())
                .unwrap_or(1),
        );
    for (p, args) in &case.facts {
        let refs: Vec<&str> = args.iter().map(String::as_str).collect();
        b = b.fact(p, &refs);
    }
    b.build().expect("corpus case must build")
}

/// Resolve the case's `WEIGHT` lines into a [`PerFact`] valuation against
/// the engine's frozen database. Weights must name real EDB facts — a
/// typo in a corpus file should fail loudly, not weigh nothing.
fn perfact<S: Semiring>(engine: &Engine, case: &Case, mk: &dyn Fn(f64) -> S) -> PerFact<S> {
    let snap = engine.snapshot().expect("snapshot for perfact weights");
    let mut v = PerFact::new();
    for (p, args, w) in &case.weights {
        let pred = snap
            .program()
            .preds
            .get(p)
            .unwrap_or_else(|| panic!("WEIGHT names unknown predicate {p:?}"));
        let tuple: Vec<u32> = args
            .iter()
            .map(|c| {
                snap.database()
                    .consts
                    .get(c)
                    .unwrap_or_else(|| panic!("WEIGHT names unknown constant {c:?}"))
            })
            .collect();
        let fact = snap
            .database()
            .fact_id(pred, &tuple)
            .unwrap_or_else(|| panic!("WEIGHT names unknown EDB fact {p} {}", args.join(" ")));
        v.insert(fact, mk(*w));
    }
    v
}

/// Evaluate one query on one engine and render the answer. `DIVERGED` is
/// a first-class answer; any other error is a corpus-authoring bug.
fn eval_one<S: Semiring>(
    engine: &Engine,
    case: &Case,
    q: &CorpusQuery,
    unit: &dyn Fn(f64) -> S,
    render: &dyn Fn(&S) -> String,
) -> String {
    let args: Vec<&str> = q.args.iter().map(String::as_str).collect();
    let query = engine
        .query(&q.pred, &args)
        .unwrap_or_else(|e| panic!("QUERY {}: {e}", q.label()));
    let out = match q.valuation.as_str() {
        "ones" => query.eval::<S, _>(&AllOnes),
        "perfact" => query.eval(&perfact(engine, case, unit)),
        u => match u.strip_prefix("unit:") {
            Some(w) => {
                let w: f64 = w
                    .parse()
                    .unwrap_or_else(|_| panic!("bad unit weight {u:?}"));
                query.eval(&UnitWeights::new(unit(w)))
            }
            None => panic!("unknown valuation {u:?} (ones | unit:<w> | perfact)"),
        },
    };
    match out {
        Ok(v) => render(&v),
        Err(Error::Diverged { .. }) => "DIVERGED".to_owned(),
        Err(e) => panic!("QUERY {}: {e}", q.label()),
    }
}

fn eval_case_on(engine: &Engine, case: &Case) -> Vec<String> {
    case.queries
        .iter()
        .map(|q| match q.semiring.as_str() {
            "bool" => eval_one::<Bool>(engine, case, q, &|_| Bool(true), &|b| b.0.to_string()),
            "tropical" => {
                eval_one::<Tropical>(engine, case, q, &|w| Tropical::new(w as u64), &|t| match t
                    .finite()
                {
                    Some(w) => w.to_string(),
                    None => "inf".to_owned(),
                })
            }
            "counting" => {
                eval_one::<Counting>(engine, case, q, &|w| Counting::new(w as u64), &|c| {
                    c.0.to_string()
                })
            }
            "fuzzy" => eval_one::<Fuzzy>(engine, case, q, &Fuzzy::new, &|f| f.value().to_string()),
            "bottleneck" => {
                eval_one::<Bottleneck>(engine, case, q, &|w| Bottleneck::new(w as u64), &|b| {
                    b.0.to_string()
                })
            }
            other => panic!("unknown semiring {other:?} in corpus query"),
        })
        .collect()
}

fn corpus_dir() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/corpus")
}

/// Run one case: cross-pipeline agreement first, then the snapshot diff
/// (or rewrite, under `CORPUS_UPDATE`). Returns human-readable failure
/// lines instead of panicking so one bad case doesn't hide the rest.
fn run_case(path: &Path, update: bool, failures: &mut Vec<String>) {
    let name = path.file_name().unwrap().to_string_lossy().into_owned();
    let text = fs::read_to_string(path).expect("read corpus case");
    let case = parse_case(path, &text);

    let materialized = eval_case_on(&build_engine(&case, Pipeline::Materialized), &case);
    let fused = eval_case_on(&build_engine(&case, Pipeline::Fused), &case);
    let magic = eval_case_on(&build_engine(&case, Pipeline::Magic), &case);
    for (i, q) in case.queries.iter().enumerate() {
        if materialized[i] != fused[i] {
            failures.push(format!(
                "{name}: {}: fused {:?} != materialized {:?}",
                q.label(),
                fused[i],
                materialized[i]
            ));
        }
        if materialized[i] != magic[i] {
            failures.push(format!(
                "{name}: {}: magic {:?} != materialized {:?}",
                q.label(),
                magic[i],
                materialized[i]
            ));
        }
    }

    let rendered: String = case
        .queries
        .iter()
        .zip(&materialized)
        .map(|(q, v)| format!("{} = {v}\n", q.label()))
        .collect();
    let out_path = path.with_extension("dl.out");
    if update {
        fs::write(&out_path, &rendered).expect("write snapshot");
        return;
    }
    match fs::read_to_string(&out_path) {
        Ok(expected) if expected == rendered => {}
        Ok(expected) => failures.push(format!(
            "{name}: snapshot mismatch (CORPUS_UPDATE=1 to accept)\n--- expected\n{expected}--- got\n{rendered}"
        )),
        Err(_) => failures.push(format!(
            "{name}: missing snapshot {} (CORPUS_UPDATE=1 to create)",
            out_path.display()
        )),
    }
}

#[test]
fn corpus_cases_agree_across_pipelines_and_match_snapshots() {
    let update = std::env::var("CORPUS_UPDATE").is_ok_and(|v| v == "1");
    let filter = std::env::var("CORPUS_FILTER").ok();
    let mut cases: Vec<PathBuf> = fs::read_dir(corpus_dir())
        .expect("tests/corpus exists")
        .map(|e| e.expect("dir entry").path())
        .filter(|p| p.extension().is_some_and(|e| e == "dl"))
        .filter(|p| {
            filter.as_deref().is_none_or(|f| {
                p.file_name()
                    .is_some_and(|n| n.to_string_lossy().contains(f))
            })
        })
        .collect();
    cases.sort();
    if filter.is_none() {
        assert!(
            cases.len() >= 20,
            "corpus shrank below 20 cases ({} found) — the acceptance bar requires ≥20",
            cases.len()
        );
    }
    assert!(!cases.is_empty(), "no corpus cases matched the filter");

    let mut failures = Vec::new();
    for path in &cases {
        run_case(path, update, &mut failures);
    }
    assert!(
        failures.is_empty(),
        "{} corpus failure(s):\n{}",
        failures.len(),
        failures.join("\n")
    );
}
