//! End-to-end integration: programs × strategies × semirings, verified
//! against the proof-tree definition of provenance (paper Def 2.2, §2.4).

use datalog_circuits::circuit::{self, verify};
use datalog_circuits::datalog::{self, programs, Database};
use datalog_circuits::graphgen::generators;
use datalog_circuits::provcirc::prelude::*;
use datalog_circuits::semiring::prelude::*;

/// Every graph strategy computes the same polynomial for TC facts, and the
/// full verification bundle (proof trees + naive eval + polynomial eval)
/// passes over the tropical semiring.
#[test]
fn tc_all_strategies_fully_verified() {
    let p = programs::transitive_closure();
    for seed in 0..3u64 {
        let g = generators::gnm(6, 14, &["E"], seed);
        let mut p2 = p.clone();
        let (db, _) = Database::from_graph(&mut p2, &g);
        let gp = datalog::ground(&p2, &db).unwrap();
        let t = p2.preds.get("T").unwrap();
        for src in 0..2u32 {
            for dst in 2..5u32 {
                let fact = gp.fact(
                    t,
                    &[
                        db.node_const(src as usize).unwrap(),
                        db.node_const(dst as usize).unwrap(),
                    ],
                );
                for strat in [
                    Strategy::GroundedFixpoint,
                    Strategy::ProductBellmanFord,
                    Strategy::ProductSquaring,
                    Strategy::UllmanVanGelder,
                    Strategy::Auto,
                ] {
                    let c = compile_graph_fact(&p, &g, src, dst, strat).unwrap();
                    match fact {
                        Some(f) => verify::verify_circuit(
                            &c.circuit,
                            &gp,
                            f,
                            &from_fn(|v| Tropical::new((v as u64 % 5) + 1)),
                            200_000,
                        )
                        .unwrap_or_else(|e| panic!("seed {seed} ({src},{dst}) {strat:?}: {e}")),
                        None => assert!(
                            c.circuit.polynomial().is_empty(),
                            "seed {seed} ({src},{dst}) {strat:?}: expected 0"
                        ),
                    }
                }
            }
        }
    }
}

/// The same compiled circuit evaluates consistently across five absorptive
/// semirings (values agree with naive Datalog evaluation in each).
#[test]
fn semiring_sweep_agreement() {
    let p = programs::transitive_closure();
    let g = generators::gnm(7, 18, &["E"], 9);
    let mut p2 = p.clone();
    let (db, _) = Database::from_graph(&mut p2, &g);
    let gp = datalog::ground(&p2, &db).unwrap();
    let t = p2.preds.get("T").unwrap();
    let budget = datalog::default_budget(&gp);
    let c = compile_graph_fact(&p, &g, 0, 6, Strategy::ProductSquaring).unwrap();
    let Some(fact) = gp.fact(t, &[db.node_const(0).unwrap(), db.node_const(6).unwrap()]) else {
        assert!(c.circuit.polynomial().is_empty());
        return;
    };

    macro_rules! check {
        ($S:ty, $assign:expr) => {{
            let assign = from_fn($assign);
            let direct = c.circuit.eval(&assign);
            let naive = datalog::naive_eval::<$S, _>(&gp, &assign, budget);
            assert!(naive.converged);
            assert!(
                direct.sr_eq(&naive.values[fact]),
                "{} mismatch: {:?} vs {:?}",
                <$S as Semiring>::NAME,
                direct,
                naive.values[fact]
            );
        }};
    }
    check!(Bool, |_| Bool(true));
    check!(Tropical, |v: u32| Tropical::new((v as u64 % 7) + 1));
    check!(Fuzzy, |v: u32| Fuzzy::new(0.3 + (v % 7) as f64 / 10.0));
    check!(Bottleneck, |v: u32| Bottleneck::new((v as u64 % 9) + 1));
    check!(Viterbi, |v: u32| Viterbi::new(0.5 + (v % 5) as f64 / 10.0));
}

/// Dyck-1 (Example 6.4): grounded and UvG circuits agree with proof-tree
/// enumeration on random balanced words.
#[test]
fn dyck_end_to_end() {
    for seed in 0..3u64 {
        let g = generators::dyck_path(4, seed);
        let mut p = programs::dyck1();
        let (db, _) = Database::from_graph(&mut p, &g);
        let gp = datalog::ground(&p, &db).unwrap();
        let s = p.preds.get("S").unwrap();
        let fact = gp
            .fact(
                s,
                &[
                    db.node_const(0).unwrap(),
                    db.node_const(g.num_nodes() - 1).unwrap(),
                ],
            )
            .expect("balanced word spans the path");
        let grounded = circuit::grounded_circuit(&gp, None).circuit_for(fact);
        let uvg = circuit::uvg_circuit(&gp, None).circuit_for(fact);
        verify::check_against_proof_trees(&grounded, &gp, fact, 100_000).unwrap();
        assert!(verify::equivalent(&grounded, &uvg), "seed {seed}");
    }
}

/// Monadic linear connected program end-to-end (Theorem 6.5's fragment).
#[test]
fn monadic_reachability_end_to_end() {
    let mut p = programs::monadic_reachability();
    let g = generators::gnm(8, 18, &["E"], 4);
    let (mut db, _) = Database::from_graph(&mut p, &g);
    let a = p.preds.get("A").unwrap();
    let v7 = db.node_const(7).unwrap();
    db.insert(a, vec![v7]);
    let gp = datalog::ground(&p, &db).unwrap();
    let u = p.preds.get("U").unwrap();
    for node in 0..8usize {
        if let Some(fact) = gp.fact(u, &[db.node_const(node).unwrap()]) {
            let c = circuit::uvg_circuit(&gp, None).circuit_for(fact);
            verify::verify_circuit(
                &c,
                &gp,
                fact,
                &from_fn(|v| Fuzzy::new(0.2 + (v % 8) as f64 / 10.0)),
                100_000,
            )
            .unwrap();
        }
    }
}

/// Formula expansion (Prop 3.3) preserves semantics for compiled circuits.
#[test]
fn formula_expansion_preserves_semantics() {
    let p = programs::transitive_closure();
    let g = generators::gnm(6, 12, &["E"], 2);
    let c = compile_graph_fact(&p, &g, 0, 5, Strategy::ProductSquaring).unwrap();
    if let Ok(f) = circuit::expand(&c.circuit, 5_000_000) {
        let assign = from_fn(|v: u32| Tropical::new((v as u64 % 4) + 1));
        assert!(f.eval(&assign).sr_eq(&c.circuit.eval(&assign)));
        assert_eq!(f.depth(), c.stats.depth);
        assert_eq!(f.size(), c.stats.formula_size);
    }
}
