//! Cross-engine agreement: the specialized CFL-reachability solver, the
//! generic Datalog grounding engine, and the product-automaton route must
//! derive exactly the same facts (Proposition 5.2 / Definition 5.1).

use datalog_circuits::datalog::{self, programs, Database};
use datalog_circuits::grammar::{self, CflOptions, Cnf, Dfa, Regex};
use datalog_circuits::graphgen::{generators, LabeledDigraph};

/// Translate graph labels into grammar terminal ids by name.
fn graph_edges_for(cnf: &Cnf, g: &LabeledDigraph) -> Vec<(u32, u32, u32)> {
    g.edges()
        .iter()
        .filter_map(|&(u, v, t)| cnf.alphabet.get(g.alphabet.name(t)).map(|tt| (u, v, tt)))
        .collect()
}

#[test]
fn cfl_reachability_matches_datalog_grounding_on_tc() {
    let cfg = grammar::Cfg::transitive_closure();
    let cnf = Cnf::from_cfg(&cfg);
    for seed in 0..5u64 {
        let g = generators::gnm(8, 20, &["E"], seed);
        let res = grammar::cflreach::solve(
            &cnf,
            g.num_nodes(),
            &graph_edges_for(&cnf, &g),
            CflOptions::default(),
        );
        let mut p = programs::transitive_closure();
        let (db, _) = Database::from_graph(&mut p, &g);
        let gp = datalog::ground(&p, &db).unwrap();
        let t = p.preds.get("T").unwrap();
        for u in 0..g.num_nodes() as u32 {
            for v in 0..g.num_nodes() as u32 {
                let via_cfl = res.holds(cnf.start, u, v);
                let via_datalog = gp
                    .fact(
                        t,
                        &[
                            db.node_const(u as usize).unwrap(),
                            db.node_const(v as usize).unwrap(),
                        ],
                    )
                    .is_some();
                assert_eq!(via_cfl, via_datalog, "seed {seed} ({u},{v})");
            }
        }
    }
}

#[test]
fn cfl_reachability_matches_datalog_on_dyck() {
    let cnf = Cnf::from_cfg(&grammar::Cfg::dyck1());
    for seed in 0..4u64 {
        let g = generators::dyck_path(5, seed);
        let res = grammar::cflreach::solve(
            &cnf,
            g.num_nodes(),
            &graph_edges_for(&cnf, &g),
            CflOptions::default(),
        );
        let mut p = programs::dyck1();
        let (db, _) = Database::from_graph(&mut p, &g);
        let gp = datalog::ground(&p, &db).unwrap();
        let s = p.preds.get("S").unwrap();
        for u in 0..g.num_nodes() as u32 {
            for v in 0..g.num_nodes() as u32 {
                assert_eq!(
                    res.holds(cnf.start, u, v),
                    gp.fact(
                        s,
                        &[
                            db.node_const(u as usize).unwrap(),
                            db.node_const(v as usize).unwrap()
                        ]
                    )
                    .is_some(),
                    "seed {seed} ({u},{v})"
                );
            }
        }
    }
}

#[test]
fn product_automaton_matches_grounding_for_two_label_rpq() {
    // L = (a b)+ over a two-label alphabet.
    let text = "T(X,Y) :- A(X,Z), B(Z,Y).\nT(X,Y) :- T(X,W), A(W,Z), B(Z,Y).";
    let program = datalog::parse_program(text).unwrap();
    for seed in 0..4u64 {
        let mut g = generators::gnm(7, 18, &["A", "B"], seed);
        let dfa = Dfa::compile(&Regex::parse("(A B)+").unwrap(), &mut g.alphabet);
        let mut p = program.clone();
        let (db, _) = Database::from_graph(&mut p, &g);
        let gp = datalog::ground(&p, &db).unwrap();
        let t = p.preds.get("T").unwrap();
        let prod = datalog_circuits::graphgen::product_with_dfa(&g, &dfa);
        // BFS on the product.
        let mut adj = vec![Vec::new(); prod.num_nodes];
        for &(u, v) in &prod.edges {
            adj[u as usize].push(v);
        }
        for src in 0..g.num_nodes() as u32 {
            let mut seen = vec![false; prod.num_nodes];
            let start = prod.node(src, dfa.start);
            seen[start as usize] = true;
            let mut stack = vec![start];
            while let Some(x) = stack.pop() {
                for &y in &adj[x as usize] {
                    if !seen[y as usize] {
                        seen[y as usize] = true;
                        stack.push(y);
                    }
                }
            }
            for dst in 0..g.num_nodes() as u32 {
                // (A B)+ never accepts ε, so no empty-path special case.
                let via_product = (0..dfa.num_states)
                    .any(|q| dfa.accepting[q] && seen[prod.node(dst, q) as usize]);
                let via_datalog = gp
                    .fact(
                        t,
                        &[
                            db.node_const(src as usize).unwrap(),
                            db.node_const(dst as usize).unwrap(),
                        ],
                    )
                    .is_some();
                assert_eq!(via_product, via_datalog, "seed {seed} ({src},{dst})");
            }
        }
    }
}

#[test]
fn cfl_derivation_counts_match_proof_tree_counts_on_paths() {
    // On a word path the number of grounded derivations of the start fact
    // equals the datalog grounding's rule count for that fact's predicate
    // family — a structural cross-check of the derivation collector.
    let cnf = Cnf::from_cfg(&grammar::Cfg::transitive_closure());
    let g = generators::path(5, "E");
    let res = grammar::cflreach::solve(
        &cnf,
        g.num_nodes(),
        &graph_edges_for(&cnf, &g),
        CflOptions {
            collect_derivations: true,
        },
    );
    let mut p = programs::transitive_closure();
    let (db, _) = Database::from_graph(&mut p, &g);
    let gp = datalog::ground(&p, &db).unwrap();
    // Both engines derive the same number of facts for the start/target.
    let t = p.preds.get("T").unwrap();
    let datalog_facts = gp.facts_of(t).len();
    let cfl_facts = res.pairs_of(cnf.start).len();
    assert_eq!(datalog_facts, cfl_facts);
    // Every CFL fact has at least one derivation recorded.
    for i in 0..res.facts.len() {
        assert!(res.derivations.iter().any(|d| d.head == i));
    }
}

#[test]
fn magic_rewriting_equivalence_on_random_graphs() {
    let p = programs::transitive_closure();
    for seed in 10..14u64 {
        let g = generators::gnm(9, 24, &["E"], seed);
        let rewritten = datalog::magic_rewrite(&p, "v0").unwrap().program;
        let mut orig = p.clone();
        let (dbo, _) = Database::from_graph(&mut orig, &g);
        let gpo = datalog::ground(&orig, &dbo).unwrap();
        let mut magic = rewritten.clone();
        let (dbm, _) = Database::from_graph(&mut magic, &g);
        let gpm = datalog::ground(&magic, &dbm).unwrap();
        let t = orig.preds.get("T").unwrap();
        let ts = magic.preds.get("T_s").unwrap();
        for y in 0..g.num_nodes() {
            let lhs = gpo
                .fact(t, &[dbo.node_const(0).unwrap(), dbo.node_const(y).unwrap()])
                .is_some();
            let rhs = gpm.fact(ts, &[dbm.node_const(y).unwrap()]).is_some();
            assert_eq!(lhs, rhs, "seed {seed} y={y}");
        }
    }
}
