//! Umbrella crate for the `datalog-circuits` workspace.
//!
//! Re-exports every workspace crate so the examples and integration tests
//! can use a single dependency. See `README.md` for the tour and `provcirc`
//! (the [`core`] re-export) for the paper-level API.

pub use circuit;
pub use datalog;
pub use grammar;
pub use graphgen;
pub use provcirc as core;
pub use semiring;
