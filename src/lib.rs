//! Umbrella crate for the `datalog-circuits` workspace.
//!
//! Re-exports every workspace crate so the examples and integration tests
//! can use a single dependency. See [`provcirc`] (home of the
//! [`Engine`](provcirc::Engine) session facade) for the paper-level API.
//!
//! The README below is included verbatim — its quickstart compiles and
//! runs as a doctest of this crate, so the front-door example can never
//! rot.
//!
#![doc = include_str!("../README.md")]

pub use circuit;
pub use datalog;
pub use grammar;
pub use graphgen;
pub use incremental;
pub use provcirc;
pub use semiring;
pub use server;
pub use telemetry;

/// Deprecated alias of [`provcirc`].
///
/// The old name shadowed the built-in `core` crate inside user code
/// (`use datalog_circuits::core::...` vs `::core::...`), so the re-export
/// is now spelled `provcirc`.
#[deprecated(since = "0.2.0", note = "use `datalog_circuits::provcirc` instead")]
pub use provcirc as core;
