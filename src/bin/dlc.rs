//! `dlc` — the datalog-circuits command line.
//!
//! ```text
//! dlc classify <program.dl>
//! dlc compile  <program.dl> --graph <edges.txt> --src N --dst M
//!              [--strategy auto|grounded|bounded|magic|bellman-ford|squaring|uvg]
//!              [--semiring tropical|boolean|fuzzy|bottleneck|counting]
//!              [--weights w0,w1,…] [--show-polynomial]
//! dlc bounded  <program.dl>
//! ```
//!
//! Program files use the `datalog::parser` syntax; graph files have one
//! `src dst label` triple per line (`#` comments allowed).

use std::process::ExitCode;

use datalog_circuits::core::prelude::*;
use datalog_circuits::datalog;
use datalog_circuits::graphgen::LabeledDigraph;
use datalog_circuits::semiring::prelude::*;

fn main() -> ExitCode {
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            eprintln!();
            eprintln!("usage:");
            eprintln!("  dlc classify <program.dl>");
            eprintln!("  dlc bounded  <program.dl>");
            eprintln!(
                "  dlc compile  <program.dl> --graph <edges.txt> --src N --dst M \
                 [--strategy S] [--semiring R] [--weights w0,w1,...] [--show-polynomial]"
            );
            ExitCode::FAILURE
        }
    }
}

fn run() -> Result<(), String> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let (cmd, rest) = args.split_first().ok_or("missing subcommand")?;
    match cmd.as_str() {
        "classify" => classify_cmd(rest),
        "bounded" => bounded_cmd(rest),
        "compile" => compile_cmd(rest),
        other => Err(format!("unknown subcommand '{other}'")),
    }
}

fn load_program(path: &str) -> Result<datalog::Program, String> {
    let text = std::fs::read_to_string(path)
        .map_err(|e| format!("cannot read {path}: {e}"))?;
    let program = datalog::parse_program(&text)?;
    program.validate()?;
    Ok(program)
}

fn load_graph(path: &str) -> Result<LabeledDigraph, String> {
    let text = std::fs::read_to_string(path)
        .map_err(|e| format!("cannot read {path}: {e}"))?;
    let mut triples: Vec<(u32, u32, String)> = Vec::new();
    let mut max_node = 0u32;
    for (lineno, raw) in text.lines().enumerate() {
        let line = raw.split('#').next().unwrap_or("").trim();
        if line.is_empty() {
            continue;
        }
        let parts: Vec<&str> = line.split_whitespace().collect();
        if parts.len() != 3 {
            return Err(format!(
                "{path}:{}: expected 'src dst label'",
                lineno + 1
            ));
        }
        let u: u32 = parts[0]
            .parse()
            .map_err(|_| format!("{path}:{}: bad src", lineno + 1))?;
        let v: u32 = parts[1]
            .parse()
            .map_err(|_| format!("{path}:{}: bad dst", lineno + 1))?;
        max_node = max_node.max(u).max(v);
        triples.push((u, v, parts[2].to_owned()));
    }
    let mut g = LabeledDigraph::new(max_node as usize + 1);
    for (u, v, label) in triples {
        g.add_edge(u, v, &label);
    }
    Ok(g)
}

fn classify_cmd(args: &[String]) -> Result<(), String> {
    let path = args.first().ok_or("classify needs a program file")?;
    let program = load_program(path)?;
    let c = classify_program(&program, 5);
    println!("program: {path}");
    println!("  linear:            {}", c.syntax.is_linear);
    println!("  monadic:           {}", c.syntax.is_monadic);
    println!("  basic chain:       {}", c.syntax.is_chain);
    println!("  left-linear (RPQ): {}", c.syntax.is_left_linear_chain);
    println!("  connected:         {}", c.syntax.is_connected);
    if let Some(g) = &c.grammar {
        println!(
            "  grammar:           {:?}, regular: {}, longest word: {:?}",
            g.language, g.regular, g.longest_word
        );
    }
    println!("  boundedness:       {:?}", c.boundedness.verdict);
    println!("  depth upper bound: {:?}", c.depth_upper);
    println!("  depth lower bound: {:?}", c.depth_lower);
    println!("  formula verdict:   {:?}", c.formula);
    Ok(())
}

fn bounded_cmd(args: &[String]) -> Result<(), String> {
    let path = args.first().ok_or("bounded needs a program file")?;
    let program = load_program(path)?;
    let report = datalog_circuits::core::decide_boundedness(&program, &Default::default());
    println!("{:?}", report.verdict);
    if let Some(e) = report.evidence {
        println!(
            "expansion evidence: bound {:?}, horizon {}, truncated {}",
            e.bound, e.horizon, e.truncated
        );
    }
    Ok(())
}

fn compile_cmd(args: &[String]) -> Result<(), String> {
    let path = args.first().ok_or("compile needs a program file")?;
    let program = load_program(path)?;
    let mut graph_path = None;
    let mut src = None;
    let mut dst = None;
    let mut strategy = Strategy::Auto;
    let mut semiring = "tropical".to_owned();
    let mut weights: Vec<u64> = Vec::new();
    let mut show_poly = false;
    let mut it = args[1..].iter();
    while let Some(flag) = it.next() {
        match flag.as_str() {
            "--graph" => graph_path = Some(it.next().ok_or("--graph needs a path")?.clone()),
            "--src" => {
                src = Some(parse_u32(it.next().ok_or("--src needs a node")?)?);
            }
            "--dst" => {
                dst = Some(parse_u32(it.next().ok_or("--dst needs a node")?)?);
            }
            "--strategy" => {
                strategy = parse_strategy(it.next().ok_or("--strategy needs a name")?)?;
            }
            "--semiring" => {
                semiring = it.next().ok_or("--semiring needs a name")?.clone();
            }
            "--weights" => {
                weights = it
                    .next()
                    .ok_or("--weights needs a list")?
                    .split(',')
                    .map(|w| w.trim().parse().map_err(|_| format!("bad weight '{w}'")))
                    .collect::<Result<_, _>>()?;
            }
            "--show-polynomial" => show_poly = true,
            other => return Err(format!("unknown flag '{other}'")),
        }
    }
    let graph = load_graph(&graph_path.ok_or("--graph is required")?)?;
    let (src, dst) = (src.ok_or("--src is required")?, dst.ok_or("--dst is required")?);
    let compiled = compile_graph_fact(&program, &graph, src, dst, strategy)?;
    println!(
        "strategy: {:?}   gates: {}   depth: {}   formula size: {}",
        compiled.strategy,
        compiled.stats.num_gates,
        compiled.stats.depth,
        compiled.stats.formula_size
    );
    let weight = move |e: u32| -> u64 {
        weights.get(e as usize).copied().unwrap_or(1)
    };
    match semiring.as_str() {
        "boolean" => println!("value (boolean): {}", compiled.circuit.eval(&|_| Bool(true))),
        "tropical" => println!(
            "value (tropical): {}",
            compiled.circuit.eval(&|e| Tropical::new(weight(e)))
        ),
        "fuzzy" => println!(
            "value (fuzzy): {}",
            compiled
                .circuit
                .eval(&|e| Fuzzy::new(1.0 / (1.0 + weight(e) as f64)))
        ),
        "bottleneck" => println!(
            "value (bottleneck): {}",
            compiled.circuit.eval(&|e| Bottleneck::new(weight(e)))
        ),
        "counting" => println!(
            "value (counting): {}",
            compiled.circuit.eval(&|_| Counting::new(1))
        ),
        other => return Err(format!("unknown semiring '{other}'")),
    }
    if show_poly {
        println!("polynomial: {}", compiled.circuit.polynomial());
    }
    Ok(())
}

fn parse_u32(s: &str) -> Result<u32, String> {
    s.parse().map_err(|_| format!("bad number '{s}'"))
}

fn parse_strategy(s: &str) -> Result<Strategy, String> {
    Ok(match s {
        "auto" => Strategy::Auto,
        "grounded" => Strategy::GroundedFixpoint,
        "bounded" => Strategy::BoundedLayered,
        "magic" => Strategy::MagicFiniteRpq,
        "bellman-ford" => Strategy::ProductBellmanFord,
        "squaring" => Strategy::ProductSquaring,
        "uvg" => Strategy::UllmanVanGelder,
        other => return Err(format!("unknown strategy '{other}'")),
    })
}
