//! `dlc` — the datalog-circuits command line.
//!
//! ```text
//! dlc classify <program.dl> [--metrics] [--metrics-json <path>]
//! dlc compile  <program.dl> --graph <edges.txt> --src N --dst M
//!              [--strategy auto|grounded|bounded|magic|bellman-ford|squaring|uvg]
//!              [--semiring tropical|boolean|fuzzy|bottleneck|counting]
//!              [--weights w0,w1,…] [--show-polynomial]
//!              [--metrics] [--metrics-json <path>]
//! dlc bounded  <program.dl>
//! dlc serve    [--addr <host:port>] [--workers N] [--eval-threads N]
//!              [--timeout-secs S] [--session-ttl <secs>] [--pending-limit N]
//! dlc client   <host:port> [--script <file>] [--metrics-json <path>]
//! ```
//!
//! Program files use the `datalog::parser` syntax; graph files have one
//! `src dst label` triple per line (`#` comments allowed). All subcommands
//! are thin wrappers over the [`Engine`] session facade.
//!
//! `--metrics` enables the session's pipeline telemetry and prints the
//! per-stage breakdown (wall-clock spans, fixpoint round series, parallel
//! shard stats, cache events) after the normal output; `--metrics-json`
//! additionally writes the machine-readable report to a file (implies
//! `--metrics`). The `DATALOG_METRICS` environment variable enables the
//! same collection without a flag. Under `--metrics`, `compile` also runs
//! one semiring evaluation through the Datalog fixpoint so grounding and
//! evaluation stages show up even for strategies that never ground.

use std::process::ExitCode;

use datalog_circuits::graphgen::LabeledDigraph;
use datalog_circuits::provcirc::prelude::*;
use datalog_circuits::provcirc::{Engine, Error};
use datalog_circuits::semiring::prelude::*;
use datalog_circuits::semiring::{AllOnes, FromEdgeWeights};

fn main() -> ExitCode {
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            eprintln!();
            eprintln!("usage:");
            eprintln!("  dlc classify <program.dl> [--metrics] [--metrics-json <path>]");
            eprintln!("  dlc bounded  <program.dl>");
            eprintln!(
                "  dlc compile  <program.dl> --graph <edges.txt> --src N --dst M \
                 [--strategy S] [--semiring R] [--weights w0,w1,...] [--show-polynomial] \
                 [--metrics] [--metrics-json <path>]"
            );
            eprintln!(
                "  dlc serve    [--addr <host:port>] [--workers N] [--eval-threads N] \
                 [--timeout-secs S] [--session-ttl <secs>] [--pending-limit N]"
            );
            eprintln!("  dlc client   <host:port> [--script <file>] [--metrics-json <path>]");
            ExitCode::FAILURE
        }
    }
}

fn cli_err(message: impl Into<String>) -> Error {
    Error::usage(message)
}

fn run() -> Result<(), Error> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let (cmd, rest) = args
        .split_first()
        .ok_or_else(|| cli_err("missing subcommand"))?;
    match cmd.as_str() {
        "classify" => classify_cmd(rest),
        "bounded" => bounded_cmd(rest),
        "compile" => compile_cmd(rest),
        "serve" => serve_cmd(rest),
        "client" => client_cmd(rest),
        other => Err(cli_err(format!("unknown subcommand '{other}'"))),
    }
}

fn read_file(path: &str) -> Result<String, Error> {
    std::fs::read_to_string(path).map_err(|e| Error::Io {
        path: path.to_owned(),
        message: e.to_string(),
    })
}

fn load_graph(path: &str) -> Result<LabeledDigraph, Error> {
    let text = read_file(path)?;
    let mut triples: Vec<(u32, u32, String)> = Vec::new();
    let mut max_node = 0u32;
    for (lineno, raw) in text.lines().enumerate() {
        let line = raw.split('#').next().unwrap_or("").trim();
        if line.is_empty() {
            continue;
        }
        let parts: Vec<&str> = line.split_whitespace().collect();
        if parts.len() != 3 {
            return Err(Error::parse_at(
                "graph",
                lineno + 1,
                format!("{path}: expected 'src dst label'"),
            ));
        }
        let u: u32 = parts[0]
            .parse()
            .map_err(|_| Error::parse_at("graph", lineno + 1, format!("{path}: bad src")))?;
        let v: u32 = parts[1]
            .parse()
            .map_err(|_| Error::parse_at("graph", lineno + 1, format!("{path}: bad dst")))?;
        max_node = max_node.max(u).max(v);
        triples.push((u, v, parts[2].to_owned()));
    }
    let mut g = LabeledDigraph::new(max_node as usize + 1);
    for (u, v, label) in triples {
        g.add_edge(u, v, &label);
    }
    Ok(g)
}

/// The `--metrics` / `--metrics-json <path>` pair shared by subcommands.
/// `--metrics-json` implies `--metrics`.
#[derive(Default)]
struct MetricsOpts {
    enabled: bool,
    json_path: Option<String>,
}

impl MetricsOpts {
    /// Consume the flag if it is one of ours; `Ok(false)` means the caller
    /// should handle it.
    fn consume<'a>(
        &mut self,
        flag: &str,
        it: &mut impl Iterator<Item = &'a String>,
    ) -> Result<bool, Error> {
        match flag {
            "--metrics" => self.enabled = true,
            "--metrics-json" => {
                self.json_path = Some(
                    it.next()
                        .ok_or_else(|| cli_err("--metrics-json needs a path"))?
                        .clone(),
                );
                self.enabled = true;
            }
            _ => return Ok(false),
        }
        Ok(true)
    }

    /// Print the report (and write the JSON file) if requested.
    fn emit(&self, engine: &Engine) -> Result<(), Error> {
        if !self.enabled {
            return Ok(());
        }
        let report = engine.metrics_report();
        println!();
        print!("{report}");
        if let Some(path) = &self.json_path {
            std::fs::write(path, report.to_json()).map_err(|e| Error::Io {
                path: path.clone(),
                message: e.to_string(),
            })?;
        }
        Ok(())
    }
}

fn classify_cmd(args: &[String]) -> Result<(), Error> {
    let path = args
        .first()
        .ok_or_else(|| cli_err("classify needs a program file"))?;
    let mut metrics = MetricsOpts::default();
    let mut it = args[1..].iter();
    while let Some(flag) = it.next() {
        if !metrics.consume(flag, &mut it)? {
            return Err(cli_err(format!("unknown flag '{flag}'")));
        }
    }
    let mut builder = Engine::builder().program_text(&read_file(path)?);
    if metrics.enabled {
        builder = builder.telemetry(true);
    }
    let engine = builder.build()?;
    let c = engine.classification();
    println!("program: {path}");
    println!("  linear:            {}", c.syntax.is_linear);
    println!("  monadic:           {}", c.syntax.is_monadic);
    println!("  basic chain:       {}", c.syntax.is_chain);
    println!("  left-linear (RPQ): {}", c.syntax.is_left_linear_chain);
    println!("  connected:         {}", c.syntax.is_connected);
    if let Some(g) = &c.grammar {
        println!(
            "  grammar:           {:?}, regular: {}, longest word: {:?}",
            g.language, g.regular, g.longest_word
        );
    }
    println!("  boundedness:       {:?}", c.boundedness.verdict);
    println!("  depth upper bound: {:?}", c.depth_upper);
    println!("  depth lower bound: {:?}", c.depth_lower);
    println!("  formula verdict:   {:?}", c.formula);
    metrics.emit(&engine)
}

fn bounded_cmd(args: &[String]) -> Result<(), Error> {
    let path = args
        .first()
        .ok_or_else(|| cli_err("bounded needs a program file"))?;
    let engine = Engine::builder().program_text(&read_file(path)?).build()?;
    let report = &engine.classification().boundedness;
    println!("{:?}", report.verdict);
    if let Some(e) = &report.evidence {
        println!(
            "expansion evidence: bound {:?}, horizon {}, truncated {}",
            e.bound, e.horizon, e.truncated
        );
    }
    Ok(())
}

fn compile_cmd(args: &[String]) -> Result<(), Error> {
    let path = args
        .first()
        .ok_or_else(|| cli_err("compile needs a program file"))?;
    let mut graph_path = None;
    let mut src = None;
    let mut dst = None;
    let mut strategy = Strategy::Auto;
    let mut semiring = "tropical".to_owned();
    let mut weights: Vec<u64> = Vec::new();
    let mut show_poly = false;
    let mut metrics = MetricsOpts::default();
    let mut it = args[1..].iter();
    while let Some(flag) = it.next() {
        if metrics.consume(flag, &mut it)? {
            continue;
        }
        match flag.as_str() {
            "--graph" => {
                graph_path = Some(
                    it.next()
                        .ok_or_else(|| cli_err("--graph needs a path"))?
                        .clone(),
                )
            }
            "--src" => {
                src = Some(parse_u32(
                    it.next().ok_or_else(|| cli_err("--src needs a node"))?,
                )?);
            }
            "--dst" => {
                dst = Some(parse_u32(
                    it.next().ok_or_else(|| cli_err("--dst needs a node"))?,
                )?);
            }
            "--strategy" => {
                strategy = parse_strategy(
                    it.next()
                        .ok_or_else(|| cli_err("--strategy needs a name"))?,
                )?;
            }
            "--semiring" => {
                semiring = it
                    .next()
                    .ok_or_else(|| cli_err("--semiring needs a name"))?
                    .clone();
            }
            "--weights" => {
                weights = it
                    .next()
                    .ok_or_else(|| cli_err("--weights needs a list"))?
                    .split(',')
                    .map(|w| {
                        w.trim()
                            .parse()
                            .map_err(|_| cli_err(format!("bad weight '{w}'")))
                    })
                    .collect::<Result<_, _>>()?;
            }
            "--show-polynomial" => show_poly = true,
            other => return Err(cli_err(format!("unknown flag '{other}'"))),
        }
    }
    let graph = load_graph(&graph_path.ok_or_else(|| cli_err("--graph is required"))?)?;
    let (src, dst) = (
        src.ok_or_else(|| cli_err("--src is required"))?,
        dst.ok_or_else(|| cli_err("--dst is required"))?,
    );

    let mut builder = Engine::builder()
        .program_text(&read_file(path)?)
        .graph(&graph);
    if metrics.enabled {
        builder = builder.telemetry(true);
    }
    let engine = builder.build()?;
    let query = engine.node_query(src, dst)?;
    if metrics.enabled {
        // Force one evaluation through the Datalog fixpoint so the
        // grounding and eval stages are populated even when the chosen
        // strategy compiles straight off the graph (e.g. ProductSquaring
        // never grounds). Divergence is a report detail here, not an error.
        match query.eval::<Bool, _>(&AllOnes) {
            Ok(_) | Err(Error::Diverged { .. }) => {}
            Err(e) => return Err(e),
        }
    }
    let compiled = query.circuit(strategy)?;
    println!(
        "strategy: {:?}   gates: {}   depth: {}   formula size: {}",
        compiled.strategy,
        compiled.stats.num_gates,
        compiled.stats.depth,
        compiled.stats.formula_size
    );
    // The i-th graph edge carries weights[i] (default 1); non-edge facts
    // (there are none in a graph session) fall back to `1`. Evaluation
    // goes through `Query::circuit_eval`, which reuses the cached
    // compilation and runs the level-synchronous parallel arena pass at
    // the session's `parallelism` (sequential at 1 — bit-identical
    // either way), timed under the `circuit_eval` telemetry stage.
    let weight = |i: usize| weights.get(i).copied().unwrap_or(1);
    match semiring.as_str() {
        "boolean" => println!(
            "value (boolean): {}",
            query.circuit_eval::<Bool, _>(strategy, &AllOnes)?
        ),
        "tropical" => println!(
            "value (tropical): {}",
            query.circuit_eval(
                strategy,
                &FromEdgeWeights::from_fn(engine.edge_facts(), |i| Tropical::new(weight(i)))
            )?
        ),
        "fuzzy" => println!(
            "value (fuzzy): {}",
            query.circuit_eval(
                strategy,
                &FromEdgeWeights::from_fn(engine.edge_facts(), |i| {
                    Fuzzy::new(1.0 / (1.0 + weight(i) as f64))
                })
            )?
        ),
        "bottleneck" => println!(
            "value (bottleneck): {}",
            query.circuit_eval(
                strategy,
                &FromEdgeWeights::from_fn(engine.edge_facts(), |i| Bottleneck::new(weight(i)))
            )?
        ),
        "counting" => println!(
            "value (counting): {}",
            query.circuit_eval::<Counting, _>(strategy, &AllOnes)?
        ),
        other => return Err(cli_err(format!("unknown semiring '{other}'"))),
    }
    if show_poly {
        println!("polynomial: {}", compiled.circuit.polynomial());
    }
    metrics.emit(&engine)
}

/// `dlc serve` — run the engine-as-a-service TCP server (see the
/// `server` crate for the protocol). Blocks until a client sends
/// `SHUTDOWN`, then drains the worker pool and exits cleanly.
fn serve_cmd(args: &[String]) -> Result<(), Error> {
    let mut config = datalog_circuits::server::ServerConfig::default().addr("127.0.0.1:7171");
    let mut it = args.iter();
    while let Some(flag) = it.next() {
        match flag.as_str() {
            "--addr" => {
                config = config.addr(
                    it.next()
                        .ok_or_else(|| cli_err("--addr needs host:port"))?
                        .clone(),
                );
            }
            "--workers" => {
                let n: usize = it
                    .next()
                    .ok_or_else(|| cli_err("--workers needs a count"))?
                    .parse()
                    .map_err(|_| cli_err("--workers needs a number"))?;
                config = config.workers(n);
            }
            "--eval-threads" => {
                let n: usize = it
                    .next()
                    .ok_or_else(|| cli_err("--eval-threads needs a count"))?
                    .parse()
                    .map_err(|_| cli_err("--eval-threads needs a number"))?;
                config = config.eval_threads(n);
            }
            "--timeout-secs" => {
                let s: u64 = it
                    .next()
                    .ok_or_else(|| cli_err("--timeout-secs needs seconds"))?
                    .parse()
                    .map_err(|_| cli_err("--timeout-secs needs a number"))?;
                config = config.read_timeout((s > 0).then(|| std::time::Duration::from_secs(s)));
            }
            "--session-ttl" => {
                let s: u64 = it
                    .next()
                    .ok_or_else(|| cli_err("--session-ttl needs seconds"))?
                    .parse()
                    .map_err(|_| cli_err("--session-ttl needs a number"))?;
                config = config.session_ttl((s > 0).then(|| std::time::Duration::from_secs(s)));
            }
            "--pending-limit" => {
                let n: usize = it
                    .next()
                    .ok_or_else(|| cli_err("--pending-limit needs a count"))?
                    .parse()
                    .map_err(|_| cli_err("--pending-limit needs a number"))?;
                config = config.pending_limit(n);
            }
            other => return Err(cli_err(format!("unknown flag '{other}'"))),
        }
    }
    let handle = datalog_circuits::server::Server::bind(config).map_err(|e| Error::Io {
        path: "serve".to_owned(),
        message: e.to_string(),
    })?;
    println!("serving on {}", handle.addr());
    // Make the address reach pipes promptly so scripted callers can
    // connect as soon as the line appears.
    use std::io::Write as _;
    std::io::stdout().flush().ok();
    handle.wait().map_err(|_| Error::Io {
        path: "serve".to_owned(),
        message: "server thread panicked".to_owned(),
    })?;
    println!("server drained, bye");
    Ok(())
}

/// `dlc client` — drive a protocol script against a running server.
/// Commands come from `--script <file>` or stdin; every reply line is
/// printed to stdout prefixed with `< `. `--metrics-json <path>` writes
/// the body of the last `OK METRICS` reply to a file (handy for CI).
fn client_cmd(args: &[String]) -> Result<(), Error> {
    let addr = args
        .first()
        .ok_or_else(|| cli_err("client needs a server address"))?;
    let mut script_path = None;
    let mut metrics_json = None;
    let mut it = args[1..].iter();
    while let Some(flag) = it.next() {
        match flag.as_str() {
            "--script" => {
                script_path = Some(
                    it.next()
                        .ok_or_else(|| cli_err("--script needs a path"))?
                        .clone(),
                );
            }
            "--metrics-json" => {
                metrics_json = Some(
                    it.next()
                        .ok_or_else(|| cli_err("--metrics-json needs a path"))?
                        .clone(),
                );
            }
            other => return Err(cli_err(format!("unknown flag '{other}'"))),
        }
    }
    let script = match script_path {
        Some(path) => read_file(&path)?,
        None => {
            use std::io::Read as _;
            let mut buf = String::new();
            std::io::stdin()
                .read_to_string(&mut buf)
                .map_err(|e| Error::Io {
                    path: "stdin".to_owned(),
                    message: e.to_string(),
                })?;
            buf
        }
    };
    let io_err = |e: std::io::Error| Error::Io {
        path: addr.clone(),
        message: e.to_string(),
    };
    let mut client = datalog_circuits::server::client::Client::connect(addr).map_err(io_err)?;
    let replies = client.run_script(&script).map_err(io_err)?;
    let mut last_metrics: Option<String> = None;
    let mut any_err = false;
    for reply in &replies {
        println!("< {}", reply.status);
        for line in &reply.body {
            println!("< {line}");
        }
        any_err |= !reply.is_ok();
        if reply.status.starts_with("OK METRICS") {
            last_metrics = Some(reply.body.join("\n"));
        }
    }
    if let Some(path) = metrics_json {
        let json = last_metrics
            .ok_or_else(|| cli_err("--metrics-json set but the script never ran METRICS"))?;
        std::fs::write(&path, json).map_err(|e| Error::Io {
            path,
            message: e.to_string(),
        })?;
    }
    if any_err {
        return Err(cli_err("one or more commands returned ERR"));
    }
    Ok(())
}

fn parse_u32(s: &str) -> Result<u32, Error> {
    s.parse().map_err(|_| cli_err(format!("bad number '{s}'")))
}

fn parse_strategy(s: &str) -> Result<Strategy, Error> {
    Ok(match s {
        "auto" => Strategy::Auto,
        "grounded" => Strategy::GroundedFixpoint,
        "bounded" => Strategy::BoundedLayered,
        "magic" => Strategy::MagicFiniteRpq,
        "bellman-ford" => Strategy::ProductBellmanFord,
        "squaring" => Strategy::ProductSquaring,
        "uvg" => Strategy::UllmanVanGelder,
        other => return Err(cli_err(format!("unknown strategy '{other}'"))),
    })
}
