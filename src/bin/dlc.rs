//! `dlc` — the datalog-circuits command line.
//!
//! ```text
//! dlc classify <program.dl>
//! dlc compile  <program.dl> --graph <edges.txt> --src N --dst M
//!              [--strategy auto|grounded|bounded|magic|bellman-ford|squaring|uvg]
//!              [--semiring tropical|boolean|fuzzy|bottleneck|counting]
//!              [--weights w0,w1,…] [--show-polynomial]
//! dlc bounded  <program.dl>
//! ```
//!
//! Program files use the `datalog::parser` syntax; graph files have one
//! `src dst label` triple per line (`#` comments allowed). All subcommands
//! are thin wrappers over the [`Engine`] session facade.

use std::process::ExitCode;

use datalog_circuits::graphgen::LabeledDigraph;
use datalog_circuits::provcirc::prelude::*;
use datalog_circuits::provcirc::{Engine, Error};
use datalog_circuits::semiring::prelude::*;
use datalog_circuits::semiring::{AllOnes, FromEdgeWeights};

fn main() -> ExitCode {
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            eprintln!();
            eprintln!("usage:");
            eprintln!("  dlc classify <program.dl>");
            eprintln!("  dlc bounded  <program.dl>");
            eprintln!(
                "  dlc compile  <program.dl> --graph <edges.txt> --src N --dst M \
                 [--strategy S] [--semiring R] [--weights w0,w1,...] [--show-polynomial]"
            );
            ExitCode::FAILURE
        }
    }
}

fn cli_err(message: impl Into<String>) -> Error {
    Error::usage(message)
}

fn run() -> Result<(), Error> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let (cmd, rest) = args
        .split_first()
        .ok_or_else(|| cli_err("missing subcommand"))?;
    match cmd.as_str() {
        "classify" => classify_cmd(rest),
        "bounded" => bounded_cmd(rest),
        "compile" => compile_cmd(rest),
        other => Err(cli_err(format!("unknown subcommand '{other}'"))),
    }
}

fn read_file(path: &str) -> Result<String, Error> {
    std::fs::read_to_string(path).map_err(|e| Error::Io {
        path: path.to_owned(),
        message: e.to_string(),
    })
}

fn load_graph(path: &str) -> Result<LabeledDigraph, Error> {
    let text = read_file(path)?;
    let mut triples: Vec<(u32, u32, String)> = Vec::new();
    let mut max_node = 0u32;
    for (lineno, raw) in text.lines().enumerate() {
        let line = raw.split('#').next().unwrap_or("").trim();
        if line.is_empty() {
            continue;
        }
        let parts: Vec<&str> = line.split_whitespace().collect();
        if parts.len() != 3 {
            return Err(Error::parse_at(
                "graph",
                lineno + 1,
                format!("{path}: expected 'src dst label'"),
            ));
        }
        let u: u32 = parts[0]
            .parse()
            .map_err(|_| Error::parse_at("graph", lineno + 1, format!("{path}: bad src")))?;
        let v: u32 = parts[1]
            .parse()
            .map_err(|_| Error::parse_at("graph", lineno + 1, format!("{path}: bad dst")))?;
        max_node = max_node.max(u).max(v);
        triples.push((u, v, parts[2].to_owned()));
    }
    let mut g = LabeledDigraph::new(max_node as usize + 1);
    for (u, v, label) in triples {
        g.add_edge(u, v, &label);
    }
    Ok(g)
}

fn classify_cmd(args: &[String]) -> Result<(), Error> {
    let path = args
        .first()
        .ok_or_else(|| cli_err("classify needs a program file"))?;
    let engine = Engine::builder().program_text(&read_file(path)?).build()?;
    let c = engine.classification();
    println!("program: {path}");
    println!("  linear:            {}", c.syntax.is_linear);
    println!("  monadic:           {}", c.syntax.is_monadic);
    println!("  basic chain:       {}", c.syntax.is_chain);
    println!("  left-linear (RPQ): {}", c.syntax.is_left_linear_chain);
    println!("  connected:         {}", c.syntax.is_connected);
    if let Some(g) = &c.grammar {
        println!(
            "  grammar:           {:?}, regular: {}, longest word: {:?}",
            g.language, g.regular, g.longest_word
        );
    }
    println!("  boundedness:       {:?}", c.boundedness.verdict);
    println!("  depth upper bound: {:?}", c.depth_upper);
    println!("  depth lower bound: {:?}", c.depth_lower);
    println!("  formula verdict:   {:?}", c.formula);
    Ok(())
}

fn bounded_cmd(args: &[String]) -> Result<(), Error> {
    let path = args
        .first()
        .ok_or_else(|| cli_err("bounded needs a program file"))?;
    let engine = Engine::builder().program_text(&read_file(path)?).build()?;
    let report = &engine.classification().boundedness;
    println!("{:?}", report.verdict);
    if let Some(e) = &report.evidence {
        println!(
            "expansion evidence: bound {:?}, horizon {}, truncated {}",
            e.bound, e.horizon, e.truncated
        );
    }
    Ok(())
}

fn compile_cmd(args: &[String]) -> Result<(), Error> {
    let path = args
        .first()
        .ok_or_else(|| cli_err("compile needs a program file"))?;
    let mut graph_path = None;
    let mut src = None;
    let mut dst = None;
    let mut strategy = Strategy::Auto;
    let mut semiring = "tropical".to_owned();
    let mut weights: Vec<u64> = Vec::new();
    let mut show_poly = false;
    let mut it = args[1..].iter();
    while let Some(flag) = it.next() {
        match flag.as_str() {
            "--graph" => {
                graph_path = Some(
                    it.next()
                        .ok_or_else(|| cli_err("--graph needs a path"))?
                        .clone(),
                )
            }
            "--src" => {
                src = Some(parse_u32(
                    it.next().ok_or_else(|| cli_err("--src needs a node"))?,
                )?);
            }
            "--dst" => {
                dst = Some(parse_u32(
                    it.next().ok_or_else(|| cli_err("--dst needs a node"))?,
                )?);
            }
            "--strategy" => {
                strategy = parse_strategy(
                    it.next()
                        .ok_or_else(|| cli_err("--strategy needs a name"))?,
                )?;
            }
            "--semiring" => {
                semiring = it
                    .next()
                    .ok_or_else(|| cli_err("--semiring needs a name"))?
                    .clone();
            }
            "--weights" => {
                weights = it
                    .next()
                    .ok_or_else(|| cli_err("--weights needs a list"))?
                    .split(',')
                    .map(|w| {
                        w.trim()
                            .parse()
                            .map_err(|_| cli_err(format!("bad weight '{w}'")))
                    })
                    .collect::<Result<_, _>>()?;
            }
            "--show-polynomial" => show_poly = true,
            other => return Err(cli_err(format!("unknown flag '{other}'"))),
        }
    }
    let graph = load_graph(&graph_path.ok_or_else(|| cli_err("--graph is required"))?)?;
    let (src, dst) = (
        src.ok_or_else(|| cli_err("--src is required"))?,
        dst.ok_or_else(|| cli_err("--dst is required"))?,
    );

    let engine = Engine::builder()
        .program_text(&read_file(path)?)
        .graph(&graph)
        .build()?;
    let compiled = engine.node_query(src, dst)?.circuit(strategy)?;
    println!(
        "strategy: {:?}   gates: {}   depth: {}   formula size: {}",
        compiled.strategy,
        compiled.stats.num_gates,
        compiled.stats.depth,
        compiled.stats.formula_size
    );
    // The i-th graph edge carries weights[i] (default 1); non-edge facts
    // (there are none in a graph session) fall back to `1`.
    let weight = |i: usize| weights.get(i).copied().unwrap_or(1);
    match semiring.as_str() {
        "boolean" => println!(
            "value (boolean): {}",
            compiled.circuit.eval::<Bool, _>(&AllOnes)
        ),
        "tropical" => println!(
            "value (tropical): {}",
            compiled
                .circuit
                .eval(&FromEdgeWeights::from_fn(engine.edge_facts(), |i| {
                    Tropical::new(weight(i))
                }))
        ),
        "fuzzy" => println!(
            "value (fuzzy): {}",
            compiled
                .circuit
                .eval(&FromEdgeWeights::from_fn(engine.edge_facts(), |i| {
                    Fuzzy::new(1.0 / (1.0 + weight(i) as f64))
                }))
        ),
        "bottleneck" => println!(
            "value (bottleneck): {}",
            compiled
                .circuit
                .eval(&FromEdgeWeights::from_fn(engine.edge_facts(), |i| {
                    Bottleneck::new(weight(i))
                }))
        ),
        "counting" => println!(
            "value (counting): {}",
            compiled.circuit.eval::<Counting, _>(&AllOnes)
        ),
        other => return Err(cli_err(format!("unknown semiring '{other}'"))),
    }
    if show_poly {
        println!("polynomial: {}", compiled.circuit.polynomial());
    }
    Ok(())
}

fn parse_u32(s: &str) -> Result<u32, Error> {
    s.parse().map_err(|_| cli_err(format!("bad number '{s}'")))
}

fn parse_strategy(s: &str) -> Result<Strategy, Error> {
    Ok(match s {
        "auto" => Strategy::Auto,
        "grounded" => Strategy::GroundedFixpoint,
        "bounded" => Strategy::BoundedLayered,
        "magic" => Strategy::MagicFiniteRpq,
        "bellman-ford" => Strategy::ProductBellmanFord,
        "squaring" => Strategy::ProductSquaring,
        "uvg" => Strategy::UllmanVanGelder,
        other => return Err(cli_err(format!("unknown strategy '{other}'"))),
    })
}
